// Figure 7b: alternative optimization objectives — p90 tail latency and
// I/Os per operation — as both learning target and evaluation metric,
// traced over sampling budget.
//
// Expected shape (paper): tail latency tuning beats the well-tuned default
// by ~15% once trained; the I/O objective improves less (~8%) because
// compaction and cache randomness make I/O a noisier target.

#include "bench_common.h"

namespace camal::bench {
namespace {

void Run() {
  tune::SystemSetup setup = BenchSetup();
  tune::Evaluator evaluator(setup);
  const auto train = workload::TrainingWorkloads();
  const std::vector<model::WorkloadSpec> eval_set = {
      train[0], train[5], train[7], train[12]};

  tune::ClassicTuner classic(setup, tune::TunerOptions{});
  const SuiteStats classic_stats = EvaluateSuite(
      evaluator, [&](const auto& w) { return classic.Recommend(w); },
      eval_set);

  std::printf("Figure 7b: alternative objectives (normalized vs Classic = "
              "1.00 on the same metric)\n\n");
  std::printf("%-28s %s\n", "objective",
              "(simulated sampling minutes -> normalized objective)");
  PrintRule();

  struct Obj {
    const char* label;
    tune::Objective objective;
  };
  for (const Obj obj : {Obj{"CAMAL(Trees)+Tail Latency",
                            tune::Objective::kP90Latency},
                        Obj{"CAMAL(Trees)+I/Os", tune::Objective::kIosPerOp}}) {
    tune::TunerOptions options;
    options.model_kind = tune::ModelKind::kTrees;
    options.objective = obj.objective;
    options.extrapolation_factor = 10.0;
    tune::CamalTuner camal(setup, options);

    const double classic_metric = obj.objective == tune::Objective::kP90Latency
                                      ? classic_stats.mean_p90_us
                                      : classic_stats.mean_ios;
    std::vector<std::pair<double, double>> curve;
    int checkpoint = 0;
    camal.SetCheckpointCallback([&](double cum_ns) {
      if (++checkpoint % 4 != 0 && checkpoint != 15) return;
      const SuiteStats stats = EvaluateSuite(
          evaluator, [&](const auto& w) { return camal.Recommend(w); },
          eval_set, static_cast<uint64_t>(checkpoint));
      const double metric = obj.objective == tune::Objective::kP90Latency
                                ? stats.mean_p90_us
                                : stats.mean_ios;
      curve.emplace_back(SimMinutes(cum_ns), metric / classic_metric);
    });
    camal.Train(train);
    std::printf("%-28s", obj.label);
    for (const auto& [minutes, norm] : curve) {
      std::printf("  %5.2fm:%.3f", minutes, norm);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace camal::bench

int main(int argc, char** argv) {
  camal::bench::InitBenchThreads(&argc, argv);
  camal::bench::Run();
  return 0;
}
