#ifndef CAMAL_BENCH_BENCH_COMMON_H_
#define CAMAL_BENCH_BENCH_COMMON_H_

// Shared plumbing for the per-figure benchmark harnesses. Each bench binary
// regenerates one table/figure of the paper on the simulated substrate:
// absolute numbers differ from the paper's NVMe testbed, but the relative
// shapes (who wins, by what factor, where crossovers fall) are the point.

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "camal/bayes_tuner.h"
#include "camal/camal_tuner.h"
#include "camal/classic_tuner.h"
#include "camal/evaluator.h"
#include "camal/grid_tuner.h"
#include "camal/plain_al_tuner.h"
#include "workload/tables.h"

namespace camal::bench {

using RecommendForWorkload =
    std::function<tune::TuningConfig(const model::WorkloadSpec&)>;

/// Aggregate of evaluating one recommendation function across workloads.
struct SuiteStats {
  double mean_latency_us = 0.0;
  double mean_p90_us = 0.0;
  double mean_ios = 0.0;
};

/// Evaluates `recommend` on every workload with the evaluator's eval_ops
/// budget and averages the metrics. Each (workload, config) pair is
/// measured at `reps` different compaction-fullness phases.
inline SuiteStats EvaluateSuite(
    const tune::Evaluator& evaluator, const RecommendForWorkload& recommend,
    const std::vector<model::WorkloadSpec>& workloads, uint64_t salt = 0,
    int reps = 2) {
  SuiteStats stats;
  for (size_t i = 0; i < workloads.size(); ++i) {
    const tune::TuningConfig config = recommend(workloads[i]);
    for (int rep = 0; rep < reps; ++rep) {
      const tune::Measurement m = evaluator.Evaluate(
          workloads[i], config,
          salt * 1000 + i + static_cast<uint64_t>(rep) * 131);
      stats.mean_latency_us += m.mean_latency_ns / 1e3;
      stats.mean_p90_us += m.p90_latency_ns / 1e3;
      stats.mean_ios += m.ios_per_op;
    }
  }
  const double n = static_cast<double>(workloads.size()) * reps;
  stats.mean_latency_us /= n;
  stats.mean_p90_us /= n;
  stats.mean_ios /= n;
  return stats;
}

/// The sampling strategies compared throughout Section 8.
enum class Strategy { kCamal, kPlainAl, kBayes, kPlainMl };

inline const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kCamal:
      return "CAMAL";
    case Strategy::kPlainAl:
      return "Plain AL";
    case Strategy::kBayes:
      return "Bayes";
    case Strategy::kPlainMl:
      return "Plain ML";
  }
  return "?";
}

inline std::unique_ptr<tune::ModelBackedTuner> MakeStrategy(
    Strategy strategy, const tune::SystemSetup& setup,
    const tune::TunerOptions& options) {
  switch (strategy) {
    case Strategy::kCamal:
      return std::make_unique<tune::CamalTuner>(setup, options);
    case Strategy::kPlainAl:
      return std::make_unique<tune::PlainAlTuner>(setup, options);
    case Strategy::kBayes:
      return std::make_unique<tune::BayesOptTuner>(setup, options);
    case Strategy::kPlainMl:
      return std::make_unique<tune::GridTuner>(setup, options);
  }
  return nullptr;
}

/// Simulated sampling cost in minutes (the paper's "sampling hours" axis,
/// at the reproduction's reduced scale).
inline double SimMinutes(double ns) { return ns / 6e10; }

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace camal::bench

#endif  // CAMAL_BENCH_BENCH_COMMON_H_
