#ifndef CAMAL_BENCH_BENCH_COMMON_H_
#define CAMAL_BENCH_BENCH_COMMON_H_

// Shared plumbing for the per-figure benchmark harnesses. Each bench binary
// regenerates one table/figure of the paper on the simulated substrate:
// absolute numbers differ from the paper's NVMe testbed, but the relative
// shapes (who wins, by what factor, where crossovers fall) are the point.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "camal/bayes_tuner.h"
#include "camal/camal_tuner.h"
#include "camal/classic_tuner.h"
#include "camal/evaluator.h"
#include "camal/grid_tuner.h"
#include "camal/plain_al_tuner.h"
#include "util/thread_pool.h"
#include "workload/tables.h"

namespace camal::bench {

/// Process-wide shard count selected by `--shards=N` (default 1: a single
/// tree, the paper's setting). Benches that build a `SystemSetup` apply it
/// as `setup.num_shards`.
inline size_t& ShardsRef() {
  static size_t shards = 1;
  return shards;
}
inline size_t Shards() { return ShardsRef(); }

/// Process-wide intra-engine worker count selected by `--engine-threads=N`
/// (default 1: serial engines; 0 = hardware). Applied as
/// `SystemSetup::engine_threads`: every serving engine the Evaluator
/// builds fans `ExecuteOps` batches across this many workers. Bit-identical
/// results at any value, like --threads.
inline int& EngineThreadsRef() {
  static int engine_threads = 1;
  return engine_threads;
}
inline int EngineThreads() { return EngineThreadsRef(); }

/// Process-wide read-submission mode selected by `--io-mode=pread|uring|auto`
/// (default auto). Applied as `SystemSetup::io_mode`; only meaningful for
/// benches running on the real-IO backend — `SystemSetup::Validate` rejects
/// non-default values on backend=sim, so sim benches fail fast with an
/// explanatory message instead of silently ignoring the flag.
inline tune::FileIoMode& IoModeRef() {
  static tune::FileIoMode mode = tune::FileIoMode::kAuto;
  return mode;
}
inline tune::FileIoMode IoMode() { return IoModeRef(); }

/// Process-wide ring queue depth selected by `--io-queue-depth=N` (default
/// 1: serial reads, bit-identical to the historical pread path). Applied as
/// `SystemSetup::io_queue_depth`; rejected on backend=sim like --io-mode.
inline int& IoQueueDepthRef() {
  static int depth = 1;
  return depth;
}
inline int IoQueueDepth() { return IoQueueDepthRef(); }

/// Parses `--threads=N`, `--shards=N`, and `--engine-threads=N` (or
/// space-separated) arguments, removes them from argv, and configures the
/// process-wide pool / shard count / engine parallelism. Threads: N = 0
/// selects the hardware concurrency; the default (1) keeps benches serial,
/// and every result is bit-identical across thread counts — only
/// wall-clock changes — so benches are free to default
/// TunerOptions::threads to 0 ("follow the global setting"). Shards: the
/// number of LSM-tree partitions the serving engine splits each instance
/// into (changes the measured system, unlike --threads). Engine threads:
/// workers each serving engine fans batched ops across (wall-clock only,
/// like --threads; pays off when job-level parallelism is exhausted).
inline int InitBenchThreads(int* argc, char** argv) {
  // Strict numeric parse: garbage or out-of-range must not silently
  // become "all cores" (0) or a truncated value.
  const auto parse = [](const char* flag, const char* s, long min, long max,
                        long fallback) {
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || v < min || errno == ERANGE || v > max) {
      std::fprintf(stderr, "[bench] invalid %s value '%s'; keeping %ld\n",
                   flag, s, fallback);
      return fallback;
    }
    return v;
  };
  const auto parse_io_mode = [](const char* s, tune::FileIoMode fallback) {
    if (std::strcmp(s, "pread") == 0) return tune::FileIoMode::kPread;
    if (std::strcmp(s, "uring") == 0) return tune::FileIoMode::kUring;
    if (std::strcmp(s, "auto") == 0) return tune::FileIoMode::kAuto;
    std::fprintf(stderr,
                 "[bench] invalid --io-mode value '%s' (want "
                 "pread|uring|auto); keeping the default\n",
                 s);
    return fallback;
  };
  long threads = 1;
  long shards = 1;
  long engine_threads = 1;
  tune::FileIoMode io_mode = tune::FileIoMode::kAuto;
  long io_queue_depth = 1;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = parse("--threads", argv[i] + 10, 0, 1024 * 1024, threads);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 < *argc) {
        threads = parse("--threads", argv[++i], 0, 1024 * 1024, threads);
      } else {
        std::fprintf(stderr,
                     "[bench] --threads needs a value (0 = all cores); "
                     "staying serial\n");
      }
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      // Ceiling mirrors tune::SystemSetup::kMaxShards (the lazy engines'
      // million-tenant envelope); Validate re-checks whatever lands in a
      // SystemSetup.
      shards = parse("--shards", argv[i] + 9, 1, 16L * 1024 * 1024, shards);
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      if (i + 1 < *argc) {
        shards =
            parse("--shards", argv[++i], 1, 16L * 1024 * 1024, shards);
      } else {
        std::fprintf(stderr, "[bench] --shards needs a value (>= 1)\n");
      }
    } else if (std::strncmp(argv[i], "--engine-threads=", 17) == 0) {
      engine_threads =
          parse("--engine-threads", argv[i] + 17, 0, 1024, engine_threads);
    } else if (std::strcmp(argv[i], "--engine-threads") == 0) {
      if (i + 1 < *argc) {
        engine_threads =
            parse("--engine-threads", argv[++i], 0, 1024, engine_threads);
      } else {
        std::fprintf(stderr,
                     "[bench] --engine-threads needs a value (0 = all "
                     "cores); keeping engines serial\n");
      }
    } else if (std::strncmp(argv[i], "--io-mode=", 10) == 0) {
      io_mode = parse_io_mode(argv[i] + 10, io_mode);
    } else if (std::strcmp(argv[i], "--io-mode") == 0) {
      if (i + 1 < *argc) {
        io_mode = parse_io_mode(argv[++i], io_mode);
      } else {
        std::fprintf(stderr,
                     "[bench] --io-mode needs a value (pread|uring|auto)\n");
      }
    } else if (std::strncmp(argv[i], "--io-queue-depth=", 17) == 0) {
      io_queue_depth =
          parse("--io-queue-depth", argv[i] + 17, 1, 1024, io_queue_depth);
    } else if (std::strcmp(argv[i], "--io-queue-depth") == 0) {
      if (i + 1 < *argc) {
        io_queue_depth =
            parse("--io-queue-depth", argv[++i], 1, 1024, io_queue_depth);
      } else {
        std::fprintf(stderr,
                     "[bench] --io-queue-depth needs a value (>= 1)\n");
      }
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  argv[out] = nullptr;  // keep the argv[argc] == NULL invariant
  util::SetGlobalThreads(static_cast<int>(threads));
  ShardsRef() = static_cast<size_t>(shards);
  EngineThreadsRef() = static_cast<int>(engine_threads);
  IoModeRef() = io_mode;
  IoQueueDepthRef() = static_cast<int>(io_queue_depth);
  const int resolved = util::GlobalThreads();
  if (resolved > 1) {
    std::printf("[bench] running with %d threads\n", resolved);
  }
  if (shards > 1) {
    std::printf("[bench] serving engines use %ld shards\n", shards);
  }
  if (engine_threads != 1) {
    std::printf("[bench] engines fan batched ops across %ld workers\n",
                engine_threads);
  }
  if (io_mode != tune::FileIoMode::kAuto || io_queue_depth != 1) {
    std::printf("[bench] file engines use io_mode=%s queue depth %ld\n",
                io_mode == tune::FileIoMode::kPread
                    ? "pread"
                    : (io_mode == tune::FileIoMode::kUring ? "uring" : "auto"),
                io_queue_depth);
  }
  return resolved;
}

/// Strips `--json <path>` / `--json=<path>` from argv and returns the path
/// ("" when absent). Benches that support machine-readable output use it
/// to emit a BENCH_*.json artifact for the perf trajectory.
inline std::string TakeJsonFlag(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 < *argc) {
        path = argv[++i];
      } else {
        std::fprintf(stderr, "[bench] --json needs a path\n");
      }
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  argv[out] = nullptr;
  return path;
}

/// Baseline `SystemSetup` for a bench: the paper defaults plus the
/// process-wide `--shards` selection. Every bench that measures through
/// the Evaluator builds its setups from this so `--shards=N` actually
/// changes the measured system.
inline tune::SystemSetup BenchSetup() {
  tune::SystemSetup setup;
  setup.num_shards = Shards();
  setup.engine_threads = EngineThreads();
  setup.io_mode = IoMode();
  setup.io_queue_depth = IoQueueDepth();
  // Abort on inconsistent knob combinations before any engine is built
  // (benches that tweak the returned setup re-validate through the
  // Evaluator, which runs the same check).
  tune::ValidateOrDie(setup);
  return setup;
}

using RecommendForWorkload =
    std::function<tune::TuningConfig(const model::WorkloadSpec&)>;

/// Aggregate of evaluating one recommendation function across workloads.
struct SuiteStats {
  double mean_latency_us = 0.0;
  double mean_p90_us = 0.0;
  double mean_p99_us = 0.0;
  double mean_ios = 0.0;
};

/// Evaluates `recommend` on every workload with the evaluator's eval_ops
/// budget and averages the metrics. Each (workload, config) pair is
/// measured at `reps` different compaction-fullness phases.
inline SuiteStats EvaluateSuite(
    const tune::Evaluator& evaluator, const RecommendForWorkload& recommend,
    const std::vector<model::WorkloadSpec>& workloads, uint64_t salt = 0,
    int reps = 2) {
  // The (workload, rep) measurements are independent; fan them across the
  // global pool. Salts are assigned by index, so the aggregate is
  // bit-identical to the serial loop regardless of --threads.
  std::vector<tune::EvalJob> jobs;
  jobs.reserve(workloads.size() * static_cast<size_t>(reps));
  for (size_t i = 0; i < workloads.size(); ++i) {
    const tune::TuningConfig config = recommend(workloads[i]);
    for (int rep = 0; rep < reps; ++rep) {
      jobs.push_back(tune::EvalJob{
          workloads[i], config,
          salt * 1000 + i + static_cast<uint64_t>(rep) * 131});
    }
  }
  const std::vector<tune::Measurement> results =
      evaluator.EvaluateBatch(jobs, util::GlobalPool());

  SuiteStats stats;
  for (const tune::Measurement& m : results) {
    stats.mean_latency_us += m.mean_latency_ns / 1e3;
    stats.mean_p90_us += m.p90_latency_ns / 1e3;
    stats.mean_p99_us += m.p99_latency_ns / 1e3;
    stats.mean_ios += m.ios_per_op;
  }
  const double n = static_cast<double>(results.size());
  stats.mean_latency_us /= n;
  stats.mean_p90_us /= n;
  stats.mean_p99_us /= n;
  stats.mean_ios /= n;
  return stats;
}

/// The sampling strategies compared throughout Section 8.
enum class Strategy { kCamal, kPlainAl, kBayes, kPlainMl };

inline const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kCamal:
      return "CAMAL";
    case Strategy::kPlainAl:
      return "Plain AL";
    case Strategy::kBayes:
      return "Bayes";
    case Strategy::kPlainMl:
      return "Plain ML";
  }
  return "?";
}

inline std::unique_ptr<tune::ModelBackedTuner> MakeStrategy(
    Strategy strategy, const tune::SystemSetup& setup,
    const tune::TunerOptions& options) {
  switch (strategy) {
    case Strategy::kCamal:
      return std::make_unique<tune::CamalTuner>(setup, options);
    case Strategy::kPlainAl:
      return std::make_unique<tune::PlainAlTuner>(setup, options);
    case Strategy::kBayes:
      return std::make_unique<tune::BayesOptTuner>(setup, options);
    case Strategy::kPlainMl:
      return std::make_unique<tune::GridTuner>(setup, options);
  }
  return nullptr;
}

/// Simulated sampling cost in minutes (the paper's "sampling hours" axis,
/// at the reproduction's reduced scale).
inline double SimMinutes(double ns) { return ns / 6e10; }

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace camal::bench

#endif  // CAMAL_BENCH_BENCH_COMMON_H_
