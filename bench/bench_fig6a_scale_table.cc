// Figure 6a: normalized latency of CAMAL (Poly/Trees) vs Classic (=1.00)
// as the data size N and the memory budget M scale up.
//
// Expected shape (paper): CAMAL holds a steady ~0.81-0.86 of Classic across
// every scale — tuning quality does not degrade with N or M.

#include "bench_common.h"

namespace camal::bench {
namespace {

double NormalizedLatency(const tune::SystemSetup& setup,
                         tune::ModelKind model) {
  tune::Evaluator evaluator(setup);
  const auto workloads = workload::TrainingWorkloads();
  const std::vector<model::WorkloadSpec> eval_set = {
      workloads[0], workloads[5], workloads[7], workloads[10], workloads[12]};

  tune::TunerOptions options;
  options.model_kind = model;
  options.extrapolation_factor = 10.0;
  tune::CamalTuner camal(setup, options);
  camal.Train(workloads);
  tune::ClassicTuner classic(setup, tune::TunerOptions{});

  const SuiteStats camal_stats = EvaluateSuite(
      evaluator, [&](const auto& w) { return camal.Recommend(w); }, eval_set);
  const SuiteStats classic_stats = EvaluateSuite(
      evaluator, [&](const auto& w) { return classic.Recommend(w); },
      eval_set);
  return camal_stats.mean_latency_us / classic_stats.mean_latency_us;
}

void Run() {
  std::printf("Figure 6a: normalized latency vs Classic (=1.00)\n\n");

  // Scaling N (memory per entry held at the default 16 bits/key).
  std::printf("%-10s %8s %8s %8s\n", "N", "20000", "40000", "80000");
  for (tune::ModelKind model :
       {tune::ModelKind::kPoly, tune::ModelKind::kTrees}) {
    std::printf("%-10s", tune::ModelKindName(model));
    for (uint64_t n : {20000u, 40000u, 80000u}) {
      tune::SystemSetup setup = BenchSetup();
      setup.num_entries = n;
      setup.total_memory_bits = 16 * n;
      std::printf(" %8.2f", NormalizedLatency(setup, model));
    }
    std::printf("\n");
  }

  // Scaling M at fixed N (the paper's 16/32/64 MB sweep).
  std::printf("\n%-10s %8s %8s %8s\n", "M (b/key)", "16", "32", "64");
  for (tune::ModelKind model :
       {tune::ModelKind::kPoly, tune::ModelKind::kTrees}) {
    std::printf("%-10s", tune::ModelKindName(model));
    for (uint64_t bits_per_key : {16u, 32u, 64u}) {
      tune::SystemSetup setup = BenchSetup();
      setup.total_memory_bits = bits_per_key * setup.num_entries;
      std::printf(" %8.2f", NormalizedLatency(setup, model));
    }
    std::printf("\n");
  }
  std::printf("\n(Classic = 1.00 in every column by construction.)\n");
}

}  // namespace
}  // namespace camal::bench

int main(int argc, char** argv) {
  camal::bench::InitBenchThreads(&argc, argv);
  camal::bench::Run();
  return 0;
}
