// Figure 5a: normalized latency (vs well-tuned RocksDB / Monkey) as a
// function of cumulative sampling cost, for every strategy x model combo:
// CAMAL (Poly/Trees/NN, with and without extrapolation), Plain AL, Bayes,
// Plain ML — plus the sample-free Classic baseline.
//
// Expected shape (paper): CAMAL reaches its low plateau with ~3-5x less
// sampling than the baselines; extrapolation cuts its cost by another ~5x;
// the NN variants need ~3x more samples than Poly/Trees.

#include "bench_common.h"

namespace camal::bench {
namespace {

void Run() {
  tune::SystemSetup setup = BenchSetup();
  tune::Evaluator evaluator(setup);
  const auto train = workload::TrainingWorkloads();
  // A diverse evaluation subset (uni/bi/tri-modal) keeps the harness quick.
  const std::vector<model::WorkloadSpec> eval_set = {train[0], train[4],
                                                     train[6], train[13]};

  // Baseline: Monkey (normalization denominator) and Classic.
  tune::MonkeyTuner monkey(setup);
  const SuiteStats monkey_stats = EvaluateSuite(
      evaluator, [&](const auto& w) { return monkey.Recommend(w); },
      eval_set);
  tune::ClassicTuner classic(setup, tune::TunerOptions{});
  const SuiteStats classic_stats = EvaluateSuite(
      evaluator, [&](const auto& w) { return classic.Recommend(w); },
      eval_set);

  std::printf("Figure 5a: normalized latency (vs Monkey=1.00) over sampling "
              "cost\n");
  std::printf("Classic (no samples): %.3f\n\n",
              classic_stats.mean_latency_us / monkey_stats.mean_latency_us);
  std::printf("%-26s %s\n", "strategy",
              "(simulated sampling minutes -> normalized latency)");
  PrintRule();

  struct Combo {
    Strategy strategy;
    tune::ModelKind model;
    double ext;  // extrapolation factor (1 = off)
  };
  std::vector<Combo> combos;
  for (tune::ModelKind model : {tune::ModelKind::kPoly,
                                tune::ModelKind::kTrees,
                                tune::ModelKind::kNn}) {
    combos.push_back({Strategy::kCamal, model, 10.0});
    combos.push_back({Strategy::kCamal, model, 1.0});
    combos.push_back({Strategy::kPlainAl, model, 1.0});
    combos.push_back({Strategy::kBayes, model, 1.0});
    combos.push_back({Strategy::kPlainMl, model, 1.0});
  }

  for (const Combo& combo : combos) {
    tune::TunerOptions options;
    options.model_kind = combo.model;
    options.extrapolation_factor = combo.ext;
    options.budget_per_workload = 12;
    auto tuner = MakeStrategy(combo.strategy, setup, options);

    std::vector<std::pair<double, double>> curve;  // (minutes, norm latency)
    int checkpoint = 0;
    tuner->SetCheckpointCallback([&](double cum_ns) {
      // Evaluating at every 5th checkpoint keeps the harness fast while
      // still tracing the curve.
      if (++checkpoint % 5 != 0 && checkpoint != 15) return;
      const SuiteStats stats = EvaluateSuite(
          evaluator, [&](const auto& w) { return tuner->Recommend(w); },
          eval_set, static_cast<uint64_t>(checkpoint),
          /*reps=*/checkpoint == 15 ? 2 : 1);
      curve.emplace_back(SimMinutes(cum_ns),
                         stats.mean_latency_us / monkey_stats.mean_latency_us);
    });
    tuner->Train(train);

    char label[64];
    std::snprintf(label, sizeof(label), "%s (%s%s)",
                  StrategyName(combo.strategy),
                  tune::ModelKindName(combo.model),
                  combo.ext > 1.0 ? " w/ Ext." : "");
    std::printf("%-26s", label);
    for (const auto& [minutes, norm] : curve) {
      std::printf("  %5.2fm:%.3f", minutes, norm);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace camal::bench

int main(int argc, char** argv) {
  camal::bench::InitBenchThreads(&argc, argv);
  camal::bench::Run();
  return 0;
}
