// Figure 6g: contribution of each tunable parameter — starting from the
// well-tuned-RocksDB default and successively enabling +T, +Mf&Mb, +Mc
// tuning, for CAMAL(Poly)/CAMAL(Trees) under leveling and tiering.
//
// Expected shape (paper): +T alone already drops normalized latency to
// ~0.86-0.88; the memory split adds more; +Mc adds a further visible step;
// leveling and tiering land comparably after full tuning.

#include "bench_common.h"

namespace camal::bench {
namespace {

void Run() {
  tune::SystemSetup setup = BenchSetup();
  tune::Evaluator evaluator(setup);
  const auto workloads = workload::TrainingWorkloads();
  const std::vector<model::WorkloadSpec> eval_set = {
      workloads[0], workloads[5], workloads[7], workloads[10], workloads[12]};

  tune::MonkeyTuner monkey(setup);
  const SuiteStats monkey_stats = EvaluateSuite(
      evaluator, [&](const auto& w) { return monkey.Recommend(w); },
      eval_set);

  std::printf("Figure 6g: parameter breakdown, normalized latency vs "
              "well-tuned RocksDB (=1.00)\n\n");
  std::printf("%-20s %8s %10s %8s\n", "variant", "+T", "+Mf&Mb", "+Mc");
  PrintRule(50);

  for (tune::ModelKind model :
       {tune::ModelKind::kPoly, tune::ModelKind::kTrees}) {
    for (lsm::CompactionPolicy policy :
         {lsm::CompactionPolicy::kLeveling, lsm::CompactionPolicy::kTiering}) {
      char label[64];
      std::snprintf(label, sizeof(label), "CAMAL(%s) %s",
                    tune::ModelKindName(model),
                    policy == lsm::CompactionPolicy::kLeveling ? "Level"
                                                               : "Tier");
      std::printf("%-20s", label);
      struct Stage {
        bool memory;
        bool mc;
      };
      for (const Stage stage : {Stage{false, false}, Stage{true, false},
                                Stage{true, true}}) {
        tune::TunerOptions options;
        options.model_kind = model;
        options.policy = policy;
        options.extrapolation_factor = 10.0;
        options.tune_memory = stage.memory;
        options.tune_mc = stage.mc;
        tune::CamalTuner camal(setup, options);
        camal.Train(workloads);
        const SuiteStats stats = EvaluateSuite(
            evaluator, [&](const auto& w) { return camal.Recommend(w); },
            eval_set);
        std::printf(" %8.2f",
                    stats.mean_latency_us / monkey_stats.mean_latency_us);
      }
      std::printf("\n");
    }
  }
  std::printf("\n(columns are cumulative: +Mf&Mb includes +T; +Mc includes "
              "both)\n");
}

}  // namespace
}  // namespace camal::bench

int main(int argc, char** argv) {
  camal::bench::InitBenchThreads(&argc, argv);
  camal::bench::Run();
  return 0;
}
