// Figure 6h: sensitivity of the dynamic mode's detector window p and
// threshold tau — post-tuning latency, I/O, and reconfiguration
// (transition) I/O across the Table-2 shifting workloads.
//
// Expected shape (paper): latency improves as p shrinks until the window
// becomes too small to estimate the mix (p <~ 1k ops there); tau below
// ~20% changes little; smaller p and tau raise transition I/Os, which the
// lazy transition strategy keeps small vs total compaction I/O.

#include "bench_common.h"

#include "camal/dynamic_tuner.h"
#include "engine/sharded_engine.h"

namespace camal::bench {
namespace {

struct DynResult {
  double latency_us = 0.0;
  double ios = 0.0;
  double transition_ios_per_reconf = 0.0;
  size_t reconfigurations = 0;
};

DynResult RunDynamic(const tune::SystemSetup& setup,
                     tune::ModelBackedTuner* tuner, size_t window, double tau,
                     size_t ops_per_phase) {
  workload::KeySpace keys(setup.num_entries, setup.seed);
  engine::ShardedEngine eng(
      Shards(), tune::MonkeyDefaultConfig(setup).ToOptions(setup),
      setup.MakeDeviceConfig());
  workload::BulkLoad(&eng, keys);

  tune::DynamicTuner::Params params;
  params.window_ops = window;
  params.tau = tau;
  tune::DynamicTuner dynamic(
      [tuner](const model::WorkloadSpec& w,
              const model::SystemParams& target) {
        return tuner->RecommendFor(w, target);
      },
      setup, params);

  DynResult out;
  const auto phases = workload::ShiftingWorkloads();
  double total_ns = 0.0;
  uint64_t total_ios = 0;
  size_t total_ops = 0;
  for (size_t i = 0; i < phases.size(); ++i) {
    const auto result =
        dynamic.RunPhase(&eng, &keys, phases[i], ops_per_phase, i + 1);
    total_ns += result.total_ns;
    total_ios += result.total_ios;
    total_ops += result.num_ops;
  }
  out.latency_us = total_ns / static_cast<double>(total_ops) / 1e3;
  out.ios = static_cast<double>(total_ios) / static_cast<double>(total_ops);
  out.reconfigurations = dynamic.reconfigurations();
  out.transition_ios_per_reconf =
      dynamic.reconfigurations() == 0
          ? 0.0
          : static_cast<double>(
                eng.AggregateCounters().transition_ios) /
                static_cast<double>(dynamic.reconfigurations());
  return out;
}

void Run() {
  tune::SystemSetup setup = BenchSetup();
  setup.num_entries = 20000;
  setup.total_memory_bits = 16 * setup.num_entries;
  const size_t ops_per_phase = 4000;

  tune::TunerOptions options;
  options.model_kind = tune::ModelKind::kTrees;
  options.extrapolation_factor = 10.0;
  tune::CamalTuner camal(setup, options);
  camal.Train(workload::TrainingWorkloads());

  // Static baseline for normalization.
  tune::MonkeyTuner monkey(setup);
  workload::KeySpace keys(setup.num_entries, setup.seed);
  engine::ShardedEngine tree(
      Shards(),
      monkey.Recommend(model::WorkloadSpec{0.25, 0.25, 0.25, 0.25})
          .ToOptions(setup),
      setup.MakeDeviceConfig());
  workload::BulkLoad(&tree, keys);
  double base_ns = 0.0;
  size_t base_ops = 0;
  for (size_t i = 0; i < 24; ++i) {
    workload::ExecutorConfig exec;
    exec.num_ops = ops_per_phase;
    exec.generator.insert_new_keys = true;
    exec.seed = i + 1;
    const auto result = workload::Execute(
        &tree, workload::ShiftingWorkloads()[i], exec, &keys);
    base_ns += result.total_ns;
    base_ops += result.num_ops;
  }
  const double base_latency_us =
      base_ns / static_cast<double>(base_ops) / 1e3;

  std::printf("Figure 6h: sensitivity of p and tau (normalized vs static "
              "RocksDB default = 1.00)\n\n");
  std::printf("Sweep p at tau = 10%%:\n");
  std::printf("%8s %10s %8s %10s %8s\n", "p", "norm lat", "I/O-op",
              "trans I/O", "reconf");
  PrintRule(50);
  for (size_t p : {10000u, 5000u, 2000u, 1000u, 200u, 50u}) {
    const DynResult r = RunDynamic(setup, &camal, p, 0.10, ops_per_phase);
    std::printf("%8zu %10.2f %8.2f %10.1f %8zu\n", p,
                r.latency_us / base_latency_us, r.ios,
                r.transition_ios_per_reconf, r.reconfigurations);
  }

  std::printf("\nSweep tau at p = 1000:\n");
  std::printf("%8s %10s %8s %10s %8s\n", "tau", "norm lat", "I/O-op",
              "trans I/O", "reconf");
  PrintRule(50);
  for (double tau : {0.30, 0.20, 0.10, 0.05, 0.01}) {
    const DynResult r = RunDynamic(setup, &camal, 1000, tau, ops_per_phase);
    std::printf("%7.0f%% %10.2f %8.2f %10.1f %8zu\n", tau * 100.0,
                r.latency_us / base_latency_us, r.ios,
                r.transition_ios_per_reconf, r.reconfigurations);
  }
}

}  // namespace
}  // namespace camal::bench

int main(int argc, char** argv) {
  camal::bench::InitBenchThreads(&argc, argv);
  camal::bench::Run();
  return 0;
}
