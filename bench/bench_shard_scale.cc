// Million-tenant scale sweep: shard (tenant) count x tenant skew on the
// lazy simulated engine, with hibernation and the hierarchical memory
// arbiter attached. The claim under measurement: every per-window cost —
// batch dispatch, arbitration, lifecycle bookkeeping, and resident
// memory — scales with the *active* tenant set, not with the configured
// total, so a 1M-shard engine serving a few thousand hot tenants costs
// about what a 10k-shard engine does.
//
// Per cell the sweep reports process RSS (VmRSS), the engine's
// materialized/hibernated/cold census, arbitration wall time per window,
// and serving throughput. Shards are chosen per op by an O(1)
// Zipf-inversion sampler over shard ids (no rejection step, so the
// hottest-tenant distribution is exact at any shard count), and keys are
// constructed to route to the chosen shard by inverting the engine's
// SplitMix64 partitioner.
//
// Flags:
//   --skews=CSV     tenant skew values swept (Zipf theta in [0,1);
//                    default 0.6,0.99)
//   --ops=N         operations per cell (default 32768)
//   --batch=N       operations per batch/window (default 512)
//   --max-shards=N  cap the shard-count sweep (default 1000000; CI smoke
//                    uses 100000)
//   --json PATH     write the sweep as a JSON artifact
//   --quick         CI smoke scale: 8192 ops per cell (the 1M-shard cell
//                    still runs unless --max-shards says otherwise)

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "camal/memory_arbiter.h"
#include "engine/sharded_engine.h"
#include "util/random.h"
#include "util/zipf.h"
#include "workload/request.h"

namespace camal::bench {
namespace {

/// Inverse of util::Mix64 (the SplitMix64 finalizer): every step of the
/// mix — add-gamma, two xorshift-multiplies, a final xorshift — is a
/// bijection, inverted here with the multipliers' modular inverses. Lets
/// the bench build a key that routes to any chosen shard in O(1):
/// Mix64(InvertMix64(z)) == z, so InvertMix64(shard + j * num_shards)
/// lands on `shard` for every j.
uint64_t InvertMix64(uint64_t x) {
  x = x ^ (x >> 31) ^ (x >> 62);
  x *= 0x319642b2d24d8ec3ULL;  // inverse of 0x94d049bb133111eb
  x = x ^ (x >> 27) ^ (x >> 54);
  x *= 0x96de1b173f119089ULL;  // inverse of 0xbf58476d1ce4e5b9
  x = x ^ (x >> 30) ^ (x >> 60);
  return x - 0x9e3779b97f4a7c15ULL;
}

/// Current VmRSS in MiB from /proc/self/status (0.0 where unavailable).
double RssMib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double mib = 0.0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    long kib = 0;
    if (std::sscanf(line, "VmRSS: %ld kB", &kib) == 1) {
      mib = static_cast<double>(kib) / 1024.0;
      break;
    }
  }
  std::fclose(f);
  return mib;
}

struct ScaleRow {
  size_t shards = 0;
  double skew = 0.0;
  size_t ops = 0;
  size_t windows = 0;
  double wall_ms = 0.0;         // serving wall time (exec + arbitration)
  double ops_per_sec = 0.0;
  double arb_us_per_window = 0.0;
  size_t materialized = 0;      // live shards at end of run
  size_t hibernated = 0;        // frozen shards at end of run
  size_t touched = 0;           // materialized + hibernated (ever active)
  size_t arbiter_rounds = 0;
  size_t arbiter_moves = 0;
  double rss_mib = 0.0;         // process RSS with the engine alive
};

ScaleRow RunCell(size_t num_shards, double skew, size_t num_ops,
                 size_t batch_ops) {
  tune::SystemSetup setup;
  setup.num_entries = 100000;  // nominal: shards fill from traffic, not load
  // Hold the per-shard even share fixed across cells (the MediumSetup
  // share every arbiter suite runs at) so the arbiter is active at every
  // shard count and cells differ only in tenant count.
  setup.total_memory_bits = static_cast<uint64_t>(num_shards) * 32000;
  setup.num_shards = num_shards;
  const lsm::Options options =
      tune::MonkeyDefaultConfig(setup).ToOptions(setup);

  // Lazy engine, hibernation after 8 idle windows: the steady state keeps
  // only the working set live and freezes the Zipf tail as it cools.
  engine::ShardedEngine eng(
      num_shards, options, setup.MakeDeviceConfig(),
      engine::ShardLifecycleConfig{/*lazy=*/true,
                                   /*hibernate_after_batches=*/8});
  tune::ArbiterOptions arb_opts;
  arb_opts.period_ops = batch_ops;  // one arbitration round per window
  tune::MemoryArbiter arbiter(setup, options, num_shards, arb_opts);

  // Zipf over shard ids via inversion sampling: O(1) per draw at any N.
  util::Random rng(setup.seed + num_shards);
  util::ZipfGenerator shard_pick(num_shards, skew);

  ScaleRow row;
  row.shards = num_shards;
  row.skew = skew;
  row.ops = num_ops;

  std::vector<engine::Op> ops(batch_ops);
  std::vector<engine::OpResult> results(batch_ops);
  double arb_ns_total = 0.0;
  const auto start = std::chrono::steady_clock::now();
  for (size_t done = 0; done < num_ops; done += batch_ops) {
    const size_t count = std::min(batch_ops, num_ops - done);
    for (size_t i = 0; i < count; ++i) {
      const uint64_t shard = shard_pick.Next(&rng);
      // 8 keys per tenant keep per-shard state tiny; gets and puts mix so
      // windows carry both read and write pressure.
      const uint64_t key =
          InvertMix64(shard + rng.Uniform(8) * num_shards);
      engine::Op& op = ops[i];
      op.kind = rng.Bernoulli(0.5) ? engine::OpKind::kPut
                                   : engine::OpKind::kGet;
      op.key = key;
      op.value = done + i;
      op.scan_len = 0;
    }
    eng.ExecuteOps(ops.data(), count, results.data());

    workload::BatchEvent event;
    event.batch_index = row.windows;
    event.count = count;
    event.engine_ops = ops.data();
    event.results = results.data();
    const auto arb_start = std::chrono::steady_clock::now();
    arbiter.OnBatchEvent(&eng, event);
    arb_ns_total += std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - arb_start)
                        .count();
    ++row.windows;
  }
  const auto stop = std::chrono::steady_clock::now();

  row.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  row.ops_per_sec =
      static_cast<double>(num_ops) / (row.wall_ms / 1e3);
  row.arb_us_per_window =
      arb_ns_total / 1e3 / static_cast<double>(row.windows);
  row.materialized = eng.MaterializedShards();
  for (size_t s = 0; s < num_shards; ++s) {
    if (eng.ShardLifecycle(s) == engine::ShardState::kHibernated) {
      ++row.hibernated;
    }
  }
  row.touched = row.materialized + row.hibernated;
  row.arbiter_rounds = arbiter.rounds();
  row.arbiter_moves = arbiter.moves();
  row.rss_mib = RssMib();
  return row;
}

void WriteJson(const std::string& path, const std::vector<ScaleRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot open %s for writing\n",
                 path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"shard_scale\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"shards\": %zu, \"skew\": %.3f, \"ops\": %zu, "
        "\"windows\": %zu, \"wall_ms\": %.3f, \"ops_per_sec\": %.1f, "
        "\"arb_us_per_window\": %.3f, \"materialized\": %zu, "
        "\"hibernated\": %zu, \"touched\": %zu, \"arbiter_rounds\": %zu, "
        "\"arbiter_moves\": %zu, \"rss_mib\": %.1f}%s\n",
        r.shards, r.skew, r.ops, r.windows, r.wall_ms, r.ops_per_sec,
        r.arb_us_per_window, r.materialized, r.hibernated, r.touched,
        r.arbiter_rounds, r.arbiter_moves, r.rss_mib,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("[bench] wrote %s\n", path.c_str());
}

void Run(const std::vector<size_t>& shard_counts,
         const std::vector<double>& skews, size_t num_ops, size_t batch_ops,
         const std::string& json_path) {
  // The partitioner inverse is load-bearing for the whole sweep: verify
  // the round-trip before trusting any cell.
  for (uint64_t z = 0; z < 4096; ++z) {
    if (util::Mix64(InvertMix64(z)) != z) {
      std::fprintf(stderr, "InvertMix64 self-check failed at %" PRIu64 "\n",
                   z);
      std::exit(1);
    }
  }

  std::printf("Shard scale sweep: %zu point ops per cell, %zu-op windows, "
              "lazy shards + hibernation (8 idle windows) + hierarchical "
              "arbiter\n",
              num_ops, batch_ops);
  std::printf("baseline RSS %.1f MiB\n\n", RssMib());
  std::printf("%9s %5s %10s %11s %12s %12s %10s %9s %9s\n", "shards",
              "skew", "wall ms", "ops/sec", "arb us/win", "materialized",
              "hibernated", "rounds", "RSS MiB");
  PrintRule(96);

  std::vector<ScaleRow> rows;
  for (const double skew : skews) {
    for (const size_t shards : shard_counts) {
      const ScaleRow row = RunCell(shards, skew, num_ops, batch_ops);
      std::printf(
          "%9zu %5.2f %10.1f %11.0f %12.2f %12zu %10zu %9zu %9.1f\n",
          row.shards, row.skew, row.wall_ms, row.ops_per_sec,
          row.arb_us_per_window, row.materialized, row.hibernated,
          row.arbiter_rounds, row.rss_mib);
      rows.push_back(row);
    }
    std::printf("\n");
  }
  std::printf("touched = shards that ever materialized; everything else "
              "stayed cold (a few pointers each).\n");
  if (!json_path.empty()) WriteJson(json_path, rows);
}

}  // namespace
}  // namespace camal::bench

int main(int argc, char** argv) {
  camal::bench::InitBenchThreads(&argc, argv);
  const std::string json_path = camal::bench::TakeJsonFlag(&argc, argv);

  size_t num_ops = 32768;
  size_t batch_ops = 512;
  size_t max_shards = 1000000;
  std::vector<double> skews = {0.6, 0.99};

  const auto parse_count = [](const char* flag, const char* s,
                              uint64_t* out) {
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(s, &end, 10);
    if (end == s || *end != '\0' || v <= 0 || errno == ERANGE) {
      std::fprintf(stderr, "invalid %s value '%s'\n", flag, s);
      return false;
    }
    *out = static_cast<uint64_t>(v);
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    uint64_t value = 0;
    if (std::strcmp(argv[i], "--quick") == 0) {
      num_ops = 8192;
    } else if (std::strncmp(argv[i], "--ops=", 6) == 0) {
      if (!parse_count("--ops", argv[i] + 6, &value)) return 1;
      num_ops = static_cast<size_t>(value);
    } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
      if (!parse_count("--batch", argv[i] + 8, &value)) return 1;
      batch_ops = static_cast<size_t>(value);
    } else if (std::strncmp(argv[i], "--max-shards=", 13) == 0) {
      if (!parse_count("--max-shards", argv[i] + 13, &value)) return 1;
      if (value > camal::tune::SystemSetup::kMaxShards) {
        std::fprintf(stderr,
                     "--max-shards %llu is past the supported ceiling "
                     "(16M)\n",
                     static_cast<unsigned long long>(value));
        return 1;
      }
      max_shards = static_cast<size_t>(value);
    } else if (std::strncmp(argv[i], "--skews=", 8) == 0) {
      skews.clear();
      const char* p = argv[i] + 8;
      while (*p != '\0') {
        char* end = nullptr;
        errno = 0;
        const double v = std::strtod(p, &end);
        if (end == p || v < 0.0 || v >= 1.0 || errno == ERANGE ||
            (*end != '\0' && *end != ',')) {
          std::fprintf(stderr,
                       "invalid --skews value '%s' (want a CSV of Zipf "
                       "thetas in [0, 1), e.g. --skews=0,0.6,0.99)\n",
                       argv[i] + 8);
          return 1;
        }
        skews.push_back(v);
        p = *end == ',' ? end + 1 : end;
      }
      if (skews.empty()) {
        std::fprintf(stderr, "--skews needs at least one value\n");
        return 1;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }

  std::vector<size_t> shard_counts;
  for (const size_t n : {size_t{1000}, size_t{10000}, size_t{100000},
                         size_t{1000000}}) {
    if (n <= max_shards) shard_counts.push_back(n);
  }
  if (shard_counts.empty()) shard_counts.push_back(max_shards);

  camal::bench::Run(shard_counts, skews, num_ops, batch_ops, json_path);
  return 0;
}
