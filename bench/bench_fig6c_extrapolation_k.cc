// Figure 6c: normalized latency vs the extrapolation factor k — CAMAL is
// trained at (N/k, M/k) and deployed at (N, M) via Lemma 5.1.
//
// Expected shape (paper): performance is flat up to k ~ 10 and degrades
// sharply past k ~ 50, where the scaled-down instance becomes too noisy
// and too structurally different to inform the full-size system.

#include "bench_common.h"

namespace camal::bench {
namespace {

void Run() {
  tune::SystemSetup setup = BenchSetup();
  setup.num_entries = 80000;  // headroom so k=50 is still a real instance
  setup.total_memory_bits = 16 * setup.num_entries;
  tune::Evaluator evaluator(setup);
  const auto workloads = workload::TrainingWorkloads();
  const std::vector<model::WorkloadSpec> eval_set = {
      workloads[0], workloads[5], workloads[7], workloads[10], workloads[12]};

  tune::ClassicTuner classic(setup, tune::TunerOptions{});
  const SuiteStats classic_stats = EvaluateSuite(
      evaluator, [&](const auto& w) { return classic.Recommend(w); },
      eval_set);

  std::printf("Figure 6c: normalized latency vs extrapolation factor k "
              "(Classic = 1.00)\n\n");
  std::printf("%6s %12s %12s %16s\n", "k", "CAMAL(Poly)", "CAMAL(Trees)",
              "train cost (m)");
  PrintRule(50);
  for (double k : {0.5, 1.0, 2.0, 4.0, 10.0, 50.0}) {
    std::printf("%6.1f", k);
    double cost = 0.0;
    for (tune::ModelKind model :
         {tune::ModelKind::kPoly, tune::ModelKind::kTrees}) {
      tune::TunerOptions options;
      options.model_kind = model;
      options.extrapolation_factor = k;
      tune::CamalTuner camal(setup, options);
      camal.Train(workloads);
      cost = SimMinutes(camal.sampling_cost_ns());
      const SuiteStats stats = EvaluateSuite(
          evaluator, [&](const auto& w) { return camal.Recommend(w); },
          eval_set);
      std::printf(" %12.2f",
                  stats.mean_latency_us / classic_stats.mean_latency_us);
    }
    std::printf(" %16.2f\n", cost);
  }
}

}  // namespace
}  // namespace camal::bench

int main(int argc, char** argv) {
  camal::bench::InitBenchThreads(&argc, argv);
  camal::bench::Run();
  return 0;
}
