// Figure 6d: tuning a 5x larger instance (the paper's 50M-entry / 80MB
// sweep). Compares CAMAL(Trees) with and without extrapolation against
// Plain AL on sampling cost vs achieved latency.
//
// Expected shape (paper): with extrapolation CAMAL reaches its plateau an
// order of magnitude sooner; Plain AL trails even after the largest budget
// (~5% reduction after 31 hours there).

#include "bench_common.h"

namespace camal::bench {
namespace {

void Run() {
  tune::SystemSetup setup = BenchSetup();
  setup.num_entries = 200000;  // 5x the default scale
  setup.total_memory_bits = 16 * setup.num_entries;
  tune::Evaluator evaluator(setup);
  const auto train = workload::TrainingWorkloads();
  const std::vector<model::WorkloadSpec> eval_set = {
      train[0], train[5], train[7], train[12]};

  tune::MonkeyTuner monkey(setup);
  const SuiteStats monkey_stats = EvaluateSuite(
      evaluator, [&](const auto& w) { return monkey.Recommend(w); },
      eval_set);
  tune::ClassicTuner classic(setup, tune::TunerOptions{});
  const SuiteStats classic_stats = EvaluateSuite(
      evaluator, [&](const auto& w) { return classic.Recommend(w); },
      eval_set);

  std::printf("Figure 6d: large-data tuning (N=%llu), normalized latency vs "
              "Monkey=1.00\n",
              static_cast<unsigned long long>(setup.num_entries));
  std::printf("Classic: %.3f\n\n",
              classic_stats.mean_latency_us / monkey_stats.mean_latency_us);
  std::printf("%-26s %s\n", "strategy",
              "(simulated sampling minutes -> normalized latency)");
  PrintRule();

  struct Combo {
    const char* label;
    Strategy strategy;
    double ext;
  };
  const Combo combos[] = {
      {"CAMAL(Trees w/ Ext.)", Strategy::kCamal, 10.0},
      {"CAMAL(Trees w/o Ext.)", Strategy::kCamal, 1.0},
      {"Plain AL (Trees)", Strategy::kPlainAl, 1.0},
  };
  for (const Combo& combo : combos) {
    tune::TunerOptions options;
    options.model_kind = tune::ModelKind::kTrees;
    options.extrapolation_factor = combo.ext;
    options.budget_per_workload = 10;
    auto tuner = MakeStrategy(combo.strategy, setup, options);
    std::vector<std::pair<double, double>> curve;
    int checkpoint = 0;
    tuner->SetCheckpointCallback([&](double cum_ns) {
      if (++checkpoint % 5 != 0 && checkpoint != 15) return;
      const SuiteStats stats = EvaluateSuite(
          evaluator, [&](const auto& w) { return tuner->Recommend(w); },
          eval_set, static_cast<uint64_t>(checkpoint));
      curve.emplace_back(SimMinutes(cum_ns),
                         stats.mean_latency_us / monkey_stats.mean_latency_us);
    });
    tuner->Train(train);
    std::printf("%-26s", combo.label);
    for (const auto& [minutes, norm] : curve) {
      std::printf("  %6.2fm:%.3f", minutes, norm);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace camal::bench

int main(int argc, char** argv) {
  camal::bench::InitBenchThreads(&argc, argv);
  camal::bench::Run();
  return 0;
}
