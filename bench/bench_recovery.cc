// Durability-cost and recovery-speed bench: how much does the manifest +
// WAL layer tax ingest, and how much faster is manifest-replay recovery
// than rebuilding the tree from scratch?
//
// Each cell ingests N entries into a FileEngine (ExecuteOps batches, so
// the WAL group-commits on batch boundaries), closes cleanly, and — for
// durable cells — times a `reopen=true` construction: manifest replay
// restores every run's fences and Bloom bits from metadata and the WAL
// tail refills the memtables, with zero run rebuilds. The rebuild
// comparison is the cell's own ingest wall time (that is exactly what a
// non-durable engine must redo after a restart).
//
// Expected shape: wal=none adds a few percent over durable-off (one
// buffered manifest/WAL write per flush/batch); wal=batch adds an fsync
// per batch; wal=always pays an fsync per op and dominates. Recovery is
// orders of magnitude faster than rebuild and roughly flat in N (it
// scales with run *count* and WAL tail size, not with data volume).
//
// Flags:
//   --entries=N    entries ingested per cell (default 120000)
//   --batch=N      ops per ExecuteOps batch = WAL group-commit window
//                  (default 512)
//   --workdir=P    base directory for run files (default: system temp;
//                  CI passes /dev/shm to keep fsync latency honest-ish
//                  without hitting a spinning device)
//   --json PATH    also write the sweep as a JSON artifact
//   --quick        tiny scale for CI smoke

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "engine/file_engine.h"

namespace camal::bench {
namespace {

namespace fs = std::filesystem;

struct RecoveryBenchConfig {
  uint64_t entries = 120000;
  size_t batch = 512;
  std::string workdir;
};

struct RecoveryRow {
  const char* mode = "";  // off | none | batch | always
  uint64_t entries = 0;
  size_t shards = 0;
  size_t runs = 0;
  uint64_t block_writes = 0;
  double ingest_ms = 0.0;
  double recover_ms = 0.0;  // 0 for the durable-off row (nothing to replay)
};

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

lsm::Options BenchOptions() {
  lsm::Options options;
  options.buffer_bytes = 16 * 1024;  // frequent flushes: many runs to recover
  options.size_ratio = 4.0;
  options.bloom_bits = 8 * 16 * 1024;
  return options;
}

std::string CellDir(const RecoveryBenchConfig& cfg, const char* mode) {
  const std::string base = cfg.workdir.empty()
                               ? fs::temp_directory_path().string()
                               : cfg.workdir;
  return base + "/camal_bench_recovery_" + mode;
}

/// Ingests `cfg.entries` sequential-key puts in ExecuteOps batches and
/// reports the cell row. `sync` is ignored when `durable` is off.
RecoveryRow RunCell(const RecoveryBenchConfig& cfg, const char* mode,
                    bool durable, engine::fileio::WalSyncPolicy sync) {
  const std::string dir = CellDir(cfg, mode);
  fs::remove_all(dir);

  RecoveryRow row;
  row.mode = mode;
  row.entries = cfg.entries;
  row.shards = Shards();

  engine::FileEngineConfig fcfg;
  fcfg.workdir = dir;
  fcfg.keep_files = durable;  // durable cells reopen the same file set
  fcfg.durable = durable;
  fcfg.wal_sync = sync;
  fcfg.io_mode = engine::IoMode::kAuto;

  std::vector<engine::Op> ops(cfg.batch);
  std::vector<engine::OpResult> results(cfg.batch);
  {
    engine::FileEngine eng(Shards(), BenchOptions(), fcfg);
    const auto t0 = std::chrono::steady_clock::now();
    uint64_t next = 0;
    while (next < cfg.entries) {
      const size_t n =
          static_cast<size_t>(std::min<uint64_t>(cfg.batch,
                                                 cfg.entries - next));
      for (size_t i = 0; i < n; ++i) {
        ops[i].kind = engine::OpKind::kPut;
        ops[i].key = next + i;
        ops[i].value = (next + i) * 3 + 1;
      }
      eng.ExecuteOps(ops.data(), n, results.data());
      next += n;
    }
    row.ingest_ms = MsSince(t0);
    for (size_t s = 0; s < Shards(); ++s) row.runs += eng.ShardRunCount(s);
    row.block_writes = eng.CostSnapshot().block_writes;
  }  // clean close

  if (durable) {
    engine::FileEngineConfig rcfg;
    rcfg.workdir = dir;
    rcfg.reopen = true;
    rcfg.keep_files = false;  // the reopened engine cleans up the cell
    rcfg.wal_sync = sync;
    const auto t0 = std::chrono::steady_clock::now();
    engine::FileEngine reopened(Shards(), BenchOptions(), rcfg);
    row.recover_ms = MsSince(t0);
    if (reopened.TotalEntries() != cfg.entries) {
      std::fprintf(stderr,
                   "[bench] FATAL: %s recovered %llu of %llu entries\n",
                   mode,
                   static_cast<unsigned long long>(reopened.TotalEntries()),
                   static_cast<unsigned long long>(cfg.entries));
      std::exit(1);
    }
    if (reopened.CostSnapshot().block_writes != 0) {
      std::fprintf(stderr,
                   "[bench] FATAL: %s recovery rebuilt runs (%llu block "
                   "writes)\n",
                   mode,
                   static_cast<unsigned long long>(
                       reopened.CostSnapshot().block_writes));
      std::exit(1);
    }
  } else {
    fs::remove_all(dir);
  }
  return row;
}

void WriteJson(const std::string& path, const RecoveryBenchConfig& cfg,
               const std::vector<RecoveryRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"recovery\",\n  \"entries\": %llu,\n"
               "  \"batch\": %zu,\n  \"shards\": %zu,\n  \"rows\": [\n",
               static_cast<unsigned long long>(cfg.entries), cfg.batch,
               Shards());
  for (size_t i = 0; i < rows.size(); ++i) {
    const RecoveryRow& r = rows[i];
    std::fprintf(f,
                 "    {\"wal\": \"%s\", \"runs\": %zu, "
                 "\"block_writes\": %llu, \"ingest_ms\": %.3f, "
                 "\"recover_ms\": %.3f}%s\n",
                 r.mode, r.runs,
                 static_cast<unsigned long long>(r.block_writes),
                 r.ingest_ms, r.recover_ms,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("[bench] wrote %s\n", path.c_str());
}

void Run(const RecoveryBenchConfig& cfg, const std::string& json_path) {
  std::printf("Durability tax and recovery speed: %llu entries, %zu-op "
              "batches, %zu shard(s)\n"
              "rebuild = the cell's own ingest time (what a non-durable "
              "engine redoes after restart)\n\n",
              static_cast<unsigned long long>(cfg.entries), cfg.batch,
              Shards());
  std::printf("%7s %6s %10s %11s %11s %9s %9s\n", "wal", "runs", "blk wr",
              "ingest ms", "vs off", "recov ms", "speedup");
  for (int i = 0; i < 70; ++i) std::putchar('-');
  std::putchar('\n');

  using engine::fileio::WalSyncPolicy;
  std::vector<RecoveryRow> rows;
  rows.push_back(RunCell(cfg, "off", false, WalSyncPolicy::kNone));
  rows.push_back(RunCell(cfg, "none", true, WalSyncPolicy::kNone));
  rows.push_back(RunCell(cfg, "batch", true, WalSyncPolicy::kBatch));
  rows.push_back(RunCell(cfg, "always", true, WalSyncPolicy::kAlways));

  const double off_ms = rows.front().ingest_ms;
  for (const RecoveryRow& r : rows) {
    char vs_off[32];
    char speedup[32];
    std::snprintf(vs_off, sizeof vs_off, "%.2fx",
                  off_ms > 0.0 ? r.ingest_ms / off_ms : 0.0);
    if (r.recover_ms > 0.0) {
      std::snprintf(speedup, sizeof speedup, "%.0fx",
                    r.ingest_ms / r.recover_ms);
    } else {
      std::snprintf(speedup, sizeof speedup, "-");
    }
    std::printf("%7s %6zu %10llu %11.1f %11s %9.2f %9s\n", r.mode, r.runs,
                static_cast<unsigned long long>(r.block_writes),
                r.ingest_ms, vs_off, r.recover_ms,
                r.recover_ms > 0.0 ? speedup : "-");
  }
  if (!json_path.empty()) WriteJson(json_path, cfg, rows);
}

}  // namespace
}  // namespace camal::bench

int main(int argc, char** argv) {
  camal::bench::InitBenchThreads(&argc, argv);
  const std::string json_path = camal::bench::TakeJsonFlag(&argc, argv);

  camal::bench::RecoveryBenchConfig cfg;
  const auto parse_count = [](const char* flag, const char* s,
                              uint64_t* out) {
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(s, &end, 10);
    if (end == s || *end != '\0' || v <= 0 || errno == ERANGE) {
      std::fprintf(stderr, "invalid %s value '%s'\n", flag, s);
      return false;
    }
    *out = static_cast<uint64_t>(v);
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    uint64_t value = 0;
    if (std::strcmp(argv[i], "--quick") == 0) {
      cfg.entries = 12000;
      cfg.batch = 256;
    } else if (std::strncmp(argv[i], "--entries=", 10) == 0) {
      if (!parse_count("--entries", argv[i] + 10, &value)) return 1;
      cfg.entries = value;
    } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
      if (!parse_count("--batch", argv[i] + 8, &value)) return 1;
      cfg.batch = static_cast<size_t>(value);
    } else if (std::strncmp(argv[i], "--workdir=", 10) == 0) {
      cfg.workdir = argv[i] + 10;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 1;
    }
  }
  camal::bench::Run(cfg, json_path);
  return 0;
}
