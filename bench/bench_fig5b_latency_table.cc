// Figure 5b: mean and 90th-percentile latency per operation for every
// method (the paper's ms/op table). All learned methods train with the
// paper's default x10 extrapolation setting.
//
// Expected shape (paper): CAMAL(Poly/Trees) lowest mean (0.10-0.11 ms
// there), ~15-20% under Classic; Monkey stable but slower; NN variants
// worst of each strategy family.

#include "bench_common.h"

namespace camal::bench {
namespace {

void Run() {
  tune::SystemSetup setup = BenchSetup();
  tune::Evaluator evaluator(setup);
  const auto workloads = workload::TrainingWorkloads();

  std::printf("Figure 5b: latency per operation across the 15 Table-1 "
              "workloads\n");
  std::printf("%-22s %10s %10s %10s\n", "method", "mean (us)", "p90 (us)",
              "p99 (us)");
  PrintRule(57);

  auto report = [&](const std::string& name,
                    const RecommendForWorkload& recommend) {
    const SuiteStats stats = EvaluateSuite(evaluator, recommend, workloads);
    std::printf("%-22s %10.1f %10.1f %10.1f\n", name.c_str(),
                stats.mean_latency_us, stats.mean_p90_us, stats.mean_p99_us);
  };

  for (tune::ModelKind model : {tune::ModelKind::kPoly,
                                tune::ModelKind::kTrees,
                                tune::ModelKind::kNn}) {
    for (Strategy strategy : {Strategy::kCamal, Strategy::kPlainAl,
                              Strategy::kBayes, Strategy::kPlainMl}) {
      tune::TunerOptions options;
      options.model_kind = model;
      options.extrapolation_factor = 10.0;
      options.budget_per_workload = 12;
      auto tuner = MakeStrategy(strategy, setup, options);
      tuner->Train(workloads);
      report(std::string(StrategyName(strategy)) + " (" +
                 tune::ModelKindName(model) + ")",
             [&](const auto& w) { return tuner->Recommend(w); });
    }
  }

  tune::ClassicTuner classic(setup, tune::TunerOptions{});
  report("Classic", [&](const auto& w) { return classic.Recommend(w); });
  // Classic (Cache): the closed-form optimum with 20% of the budget carved
  // out for a block cache the I/O model cannot reason about.
  report("Classic (Cache)", [&](const auto& w) {
    tune::TuningConfig c = classic.Recommend(w);
    const double mc = 0.2 * static_cast<double>(setup.total_memory_bits);
    const double shrink = std::min(c.mb_bits - 1024.0, mc);
    c.mc_bits = shrink;
    c.mb_bits -= shrink;
    return c;
  });
  tune::MonkeyTuner monkey(setup);
  report("Monkey", [&](const auto& w) { return monkey.Recommend(w); });
}

}  // namespace
}  // namespace camal::bench

int main(int argc, char** argv) {
  camal::bench::InitBenchThreads(&argc, argv);
  camal::bench::Run();
  return 0;
}
