// Figure 7d: tuning under workload uncertainty — the observed workload may
// deviate from the expected one within a KL ball of radius rho. Compares
// plain CAMAL(Poly), uncertainty-aware CAMAL(Poly) (average predicted
// latency over sampled scenarios), and Endure (robust closed-form tuning).
//
// Expected shape (paper): plain CAMAL already beats Endure at moderate rho
// (its nominal tuning is simply better); the uncertainty-aware variant
// extends the lead as rho grows.

#include "bench_common.h"

#include <limits>

#include "camal/uncertainty.h"
#include "model/optimum.h"

namespace camal::bench {
namespace {

// Endure's robust tuning: minimize the *expected closed-form cost* over
// workloads sampled in the rho-ball (the paper's baseline, built on the
// same I/O model as Classic).
tune::TuningConfig EndureRobust(const tune::SystemSetup& setup,
                                const model::WorkloadSpec& expected,
                                double rho, util::Random* rng) {
  const model::SystemParams params = setup.ToModelParams();
  const model::CostModel cm(params);
  std::vector<model::WorkloadSpec> scenarios;
  for (int i = 0; i < 16; ++i) {
    scenarios.push_back(model::SampleInKlBall(expected, rho, rng));
  }
  tune::TuningConfig best;
  double best_cost = std::numeric_limits<double>::infinity();
  const int t_lim = static_cast<int>(cm.SizeRatioLimit());
  for (int t = 2; t <= t_lim; ++t) {
    for (double bpk = 0.0; bpk <= 14.0; bpk += 1.0) {
      model::ModelConfig c;
      c.size_ratio = t;
      c.mf_bits = bpk * params.num_entries;
      c.mb_bits = params.total_memory_bits - c.mf_bits;
      if (c.mb_bits < model::MinBufferBits(params)) continue;
      double total = 0.0;
      for (const auto& s : scenarios) total += cm.OpCost(s, c);
      if (total < best_cost) {
        best_cost = total;
        best.size_ratio = t;
        best.mf_bits = c.mf_bits;
        best.mb_bits = c.mb_bits;
      }
    }
  }
  return best;
}

void Run() {
  tune::SystemSetup setup = BenchSetup();
  tune::Evaluator evaluator(setup);
  const auto train = workload::TrainingWorkloads();

  tune::TunerOptions options;
  options.model_kind = tune::ModelKind::kPoly;
  options.extrapolation_factor = 10.0;
  tune::CamalTuner camal(setup, options);
  camal.Train(train);

  const model::WorkloadSpec expected{0.25, 0.25, 0.25, 0.25};
  std::printf("Figure 7d: workload uncertainty (expected %s)\n",
              expected.ToString().c_str());
  std::printf("normalized mean latency over observed workloads in the "
              "rho-ball (CAMAL(Poly) at rho=0 = 1.00)\n\n");
  std::printf("%6s %12s %18s %10s\n", "rho", "CAMAL(Poly)",
              "CAMAL(Poly,Uncert.)", "Endure");
  PrintRule(52);

  util::Random rng(11);
  double denom = 0.0;
  for (double rho : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    // Observed workloads deviate from the expectation within the ball.
    std::vector<model::WorkloadSpec> observed;
    for (int i = 0; i < 6; ++i) {
      observed.push_back(model::SampleInKlBall(expected, rho, &rng));
    }
    const tune::TuningConfig plain = camal.Recommend(expected);
    const tune::TuningConfig robust =
        RecommendUnderUncertainty(camal, expected, rho, 12, &rng);
    const tune::TuningConfig endure = EndureRobust(setup, expected, rho, &rng);

    auto avg = [&](const tune::TuningConfig& c) {
      double total = 0.0;
      for (size_t i = 0; i < observed.size(); ++i) {
        total += evaluator.Evaluate(observed[i], c, i).mean_latency_ns / 1e3;
      }
      return total / static_cast<double>(observed.size());
    };
    const double plain_lat = avg(plain);
    const double robust_lat = avg(robust);
    const double endure_lat = avg(endure);
    if (denom == 0.0) denom = plain_lat;
    std::printf("%6.1f %12.2f %18.2f %10.2f\n", rho, plain_lat / denom,
                robust_lat / denom, endure_lat / denom);
  }
}

}  // namespace
}  // namespace camal::bench

int main(int argc, char** argv) {
  camal::bench::InitBenchThreads(&argc, argv);
  camal::bench::Run();
  return 0;
}
