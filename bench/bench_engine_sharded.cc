// Sharded serving sweep: throughput and engine-attributed latency across
// backends x shard counts x thread counts, in two serving modes:
//
//   serial — T independent tenants (one engine each, S shards per engine)
//            fanned across a T-worker pool via workload::ExecuteBatch;
//            each engine serves its batches serially. Wall-clock scales
//            with tenants, never with shards (cost = sum over shard
//            devices inside one caller thread).
//   async  — the same T tenants served one after another, each engine
//            fanning its batched ops across a shared pool of the same
//            `threads` workers (per-shard submission-list fan-out).
//            Wall-clock scales with min(shards, threads).
//
// Backends (the ROADMAP's multi-backend comparison):
//
//   sim  — engine::ShardedEngine over simulated devices. Latency/IO
//          metrics are simulated, bit-identical between modes and at any
//          thread count — only wall-clock moves.
//   file — engine::FileEngine over real files (O_DIRECT when the
//          filesystem allows). Latency metrics are real monotonic-clock
//          measurements; I/O counts are real (and deterministic given
//          the op stream), latencies vary run to run.
//
// Flags:
//   --shards=N    largest shard count swept (default 8; swept as 1,2,4,..N)
//   --threads=N   largest tenant/worker count swept (default 4)
//   --ops=N       operations per tenant (default 4000)
//   --entries=N   initially loaded entries per tenant (default 8000)
//   --mode=M      serial | async | both (default both)
//   --backend=B   sim | file | both (default sim: the historical sweep)
//   --workdir=P   base directory for file-backend run files (default:
//                 system temp dir; use a tmpfs path for CI smoke)
//   --arbiter=A   off | periodic — per-tenant memory arbitration
//                 (default off: the even-split baseline)
//   --qd=CSV      queue depths swept for file-backend cells (e.g.
//                 --qd=1,8,32; default: the --io-queue-depth value). Depth
//                 1 is the serial pread baseline; deeper rings overlap
//                 block reads via io_uring where the kernel supports it.
//                 Results and I/O counts are identical at every depth —
//                 the sweep shows pure wall-clock movement.
//   --skew=F      per-shard Zipf traffic hotness (default 0: uniform);
//                 shard s receives weight 1/(s+1)^F
//   --json PATH   also write the sweep as a JSON artifact
//   --quick       tiny scale for CI smoke

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "camal/memory_arbiter.h"
#include "engine/file_engine.h"
#include "engine/sharded_engine.h"
#include "workload/executor.h"
#include "workload/generator.h"

namespace camal::bench {
namespace {

struct SweepRow {
  const char* backend = "sim";
  /// Read-submission path actually engaged: "uring" when any shard holds a
  /// live ring, "pread" on the serial/fallback path, "sim" for the
  /// simulated backend (which issues no real reads).
  const char* io_backend = "sim";
  uint32_t io_queue_depth = 1;
  const char* mode = "serial";
  const char* arbiter = "off";
  double skew = 0.0;
  size_t shards = 0;
  size_t threads = 0;
  double wall_ms = 0.0;
  double ops_per_sec = 0.0;
  double sim_mean_us = 0.0;
  double sim_p99_us = 0.0;
  double sim_ios_per_op = 0.0;
  /// Measured-vs-predicted per-op I/O residuals (tenant 0, per cost
  /// channel): the engine's op-cost profiler windows against the
  /// closed-form model's expectation at this (mix, config) — the
  /// sim-vs-model gap `bench_calibration`'s corrector fits away. 0 for
  /// channels that served no ops.
  double point_ios_residual = 0.0;
  double range_ios_residual = 0.0;
  double write_ios_residual = 0.0;
  /// Per-shard observability of tenant 0 after the run: arbitrated (or
  /// even-split) memory budgets, live entries, and each shard's simulated
  /// cost clock — the accessors the arbiter itself prices with.
  std::vector<uint64_t> shard_budget_bits;
  std::vector<uint64_t> shard_entries;
  std::vector<double> shard_sim_ms;
};

struct SweepConfig {
  size_t max_shards = 8;
  size_t max_threads = 4;
  size_t ops_per_tenant = 4000;
  uint64_t entries_per_tenant = 8000;
  bool run_serial = true;
  bool run_async = true;
  bool run_sim = true;
  bool run_file = false;
  std::string workdir;  // file backend; empty = system temp dir
  bool arbiter = false;
  double skew = 0.0;
  /// Queue depths swept for file cells (--qd=CSV); sim cells ignore it.
  std::vector<uint32_t> qd_sweep;
};

engine::IoMode BenchIoMode() {
  switch (IoMode()) {
    case tune::FileIoMode::kPread:
      return engine::IoMode::kPread;
    case tune::FileIoMode::kUring:
      return engine::IoMode::kUring;
    case tune::FileIoMode::kAuto:
      break;
  }
  return engine::IoMode::kAuto;
}

SweepRow RunCell(const SweepConfig& cfg, size_t shards, size_t threads,
                 bool async, bool file_backend, uint32_t queue_depth) {
  tune::SystemSetup setup;
  setup.num_entries = cfg.entries_per_tenant;
  setup.total_memory_bits = 16 * cfg.entries_per_tenant;
  setup.num_shards = shards;
  const tune::TuningConfig config = tune::MonkeyDefaultConfig(setup);
  const workload::KeySpace keys(setup.num_entries, setup.seed);
  const model::WorkloadSpec mix{0.2, 0.3, 0.2, 0.3};

  // T tenants, each its own engine over its own device(s)/file set(s):
  // sim jitter streams are derived per tenant so tenants are independent
  // but deterministic; file tenants each own a unique directory.
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads);
  std::vector<std::unique_ptr<engine::StorageEngine>> tenants;
  std::vector<std::unique_ptr<tune::MemoryArbiter>> arbiters;
  std::vector<workload::ExecuteJob> jobs;
  for (size_t t = 0; t < threads; ++t) {
    if (file_backend) {
      engine::FileEngineConfig fcfg;
      if (!cfg.workdir.empty()) {
        fcfg.workdir = cfg.workdir + "/cell_" +
                       std::to_string(engine::FileEngine::NextUniqueId());
      }
      fcfg.io_mode = BenchIoMode();
      fcfg.io_queue_depth = queue_depth;
      auto fe = std::make_unique<engine::FileEngine>(
          shards, config.ToOptions(setup), fcfg);
      if (async) fe->set_pool(pool.get());
      tenants.push_back(std::move(fe));
    } else {
      auto se = std::make_unique<engine::ShardedEngine>(
          shards, config.ToOptions(setup),
          setup.MakeDeviceConfig(/*salt=*/t));
      // Async mode: the engine fans each batch across the shared pool
      // (shard-level parallelism); tenants then run one at a time.
      if (async) se->set_pool(pool.get());
      tenants.push_back(std::move(se));
    }
    workload::BulkLoad(tenants.back().get(), keys);
    // Residual columns compare the model against the *measured phase*
    // only: drop whatever the profiler saw during ingest.
    tenants.back()->ResetOpCostWindows();
    workload::ExecuteJob job;
    job.engine = tenants.back().get();
    job.spec = mix;
    job.config.num_ops = cfg.ops_per_tenant;
    job.config.generator.scan_len = setup.scan_len;
    // Hot/cold shard traffic (inert at skew 0).
    job.config.generator.shard_skew = cfg.skew;
    job.config.generator.num_shards = shards;
    job.config.seed = 1000 + t;
    if (cfg.arbiter && shards > 1) {
      // One arbiter per tenant engine, riding the batch pipeline; a few
      // rounds fit in the per-tenant op budget at any --ops value.
      tune::ArbiterOptions arb_opts;
      arb_opts.period_ops = std::max<size_t>(128, cfg.ops_per_tenant / 8);
      arbiters.push_back(std::make_unique<tune::MemoryArbiter>(
          setup, config.ToOptions(setup), shards, arb_opts));
      job.config.hook = arbiters.back().get();
    }
    // Steady-state updates only: the shared KeySpace stays immutable.
    job.keys = const_cast<workload::KeySpace*>(&keys);
    jobs.push_back(job);
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<workload::ExecutionResult> results;
  if (async) {
    // Tenant-level serial, shard-level parallel.
    for (const workload::ExecuteJob& job : jobs) {
      results.push_back(
          workload::Execute(job.engine, job.spec, job.config, job.keys));
    }
  } else {
    // Tenant-level parallel, shard-level serial.
    results = workload::ExecuteBatch(jobs, pool.get());
  }
  const auto stop = std::chrono::steady_clock::now();

  SweepRow row;
  row.backend = file_backend ? "file" : "sim";
  if (file_backend) {
    row.io_backend =
        static_cast<const engine::FileEngine&>(*tenants.front()).io_backend();
    row.io_queue_depth = queue_depth;
  }
  row.mode = async ? "async" : "serial";
  row.arbiter = (cfg.arbiter && shards > 1) ? "periodic" : "off";
  row.skew = cfg.skew;
  row.shards = shards;
  row.threads = threads;
  row.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  const double total_ops =
      static_cast<double>(cfg.ops_per_tenant) * static_cast<double>(threads);
  row.ops_per_sec = total_ops / (row.wall_ms / 1e3);
  for (const workload::ExecutionResult& r : results) {
    row.sim_mean_us += r.MeanLatencyNs() / 1e3;
    row.sim_p99_us += r.P99LatencyNs() / 1e3;
    row.sim_ios_per_op += r.IosPerOp();
  }
  const double n = static_cast<double>(results.size());
  row.sim_mean_us /= n;
  row.sim_p99_us /= n;
  row.sim_ios_per_op /= n;

  // Measured-vs-predicted residual columns (tenant 0): the closed-form
  // model's per-channel expectation against the profiler windows the run
  // just filled.
  {
    const engine::StorageEngine& t0 = *tenants.front();
    const model::CostModel cm(setup.ToModelParams());
    const model::ModelConfig mconf = config.ToModelConfig();
    const model::WorkloadSpec wn = mix.Normalized();
    const engine::OpCostWindow points =
        t0.OpCostWindowTotal(engine::OpKind::kGet);
    engine::OpCostWindow writes = t0.OpCostWindowTotal(engine::OpKind::kPut);
    writes += t0.OpCostWindowTotal(engine::OpKind::kDelete);
    const engine::OpCostWindow ranges =
        t0.OpCostWindowTotal(engine::OpKind::kScan);
    const double point_weight = wn.v + wn.r;
    const double point_pred =
        point_weight <= 0.0
            ? 0.0
            : (wn.v * cm.ZeroResultLookupCost(mconf) +
               wn.r * cm.NonZeroResultLookupCost(mconf)) /
                  point_weight;
    if (points.ops > 0) {
      row.point_ios_residual = points.IosPerOp() - point_pred;
    }
    if (ranges.ops > 0) {
      row.range_ios_residual = ranges.IosPerOp() - cm.RangeLookupCost(mconf);
    }
    if (writes.ops > 0) {
      row.write_ios_residual = writes.IosPerOp() - cm.WriteCost(mconf);
    }
  }

  // Per-shard columns from tenant 0 (tenants are statistically identical;
  // one tenant keeps the artifact small): where the budget ended up, how
  // many entries each shard holds, and each shard's cost clock.
  const engine::StorageEngine& t0 = *tenants.front();
  for (size_t s = 0; s < t0.NumShards(); ++s) {
    row.shard_budget_bits.push_back(t0.ShardBudgetSnapshot(s).TotalBits());
    row.shard_entries.push_back(t0.ShardEntries(s));
    row.shard_sim_ms.push_back(t0.ShardCostSnapshot(s).elapsed_ns / 1e6);
  }
  return row;
}

void WriteJson(const std::string& path, const SweepConfig& cfg,
               const std::vector<SweepRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot open %s for writing\n",
                 path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"engine_sharded\",\n");
  std::fprintf(f, "  \"ops_per_tenant\": %zu,\n", cfg.ops_per_tenant);
  std::fprintf(f, "  \"entries_per_tenant\": %llu,\n",
               static_cast<unsigned long long>(cfg.entries_per_tenant));
  std::fprintf(f, "  \"rows\": [\n");
  const auto print_u64_array = [f](const char* key,
                                   const std::vector<uint64_t>& values) {
    std::fprintf(f, "\"%s\": [", key);
    for (size_t i = 0; i < values.size(); ++i) {
      std::fprintf(f, "%s%llu", i == 0 ? "" : ", ",
                   static_cast<unsigned long long>(values[i]));
    }
    std::fprintf(f, "]");
  };
  const auto print_double_array = [f](const char* key,
                                      const std::vector<double>& values) {
    std::fprintf(f, "\"%s\": [", key);
    for (size_t i = 0; i < values.size(); ++i) {
      std::fprintf(f, "%s%.3f", i == 0 ? "" : ", ", values[i]);
    }
    std::fprintf(f, "]");
  };
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"io_backend\": \"%s\", "
                 "\"io_queue_depth\": %u, \"mode\": \"%s\", "
                 "\"arbiter\": \"%s\", "
                 "\"skew\": %.3f, \"shards\": %zu, \"threads\": %zu, "
                 "\"wall_ms\": %.3f, \"ops_per_sec\": %.1f, "
                 "\"sim_mean_us\": %.3f, \"sim_p99_us\": %.3f, "
                 "\"sim_ios_per_op\": %.4f, "
                 "\"point_ios_residual\": %.4f, "
                 "\"range_ios_residual\": %.4f, "
                 "\"write_ios_residual\": %.4f, ",
                 r.backend, r.io_backend, r.io_queue_depth, r.mode, r.arbiter,
                 r.skew, r.shards, r.threads, r.wall_ms, r.ops_per_sec,
                 r.sim_mean_us, r.sim_p99_us, r.sim_ios_per_op,
                 r.point_ios_residual, r.range_ios_residual,
                 r.write_ios_residual);
    print_u64_array("shard_budget_bits", r.shard_budget_bits);
    std::fprintf(f, ", ");
    print_u64_array("shard_entries", r.shard_entries);
    std::fprintf(f, ", ");
    print_double_array("shard_sim_ms", r.shard_sim_ms);
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("[bench] wrote %s\n", path.c_str());
}

void Run(const SweepConfig& cfg, const std::string& json_path) {
  std::printf("Sharded serving engine: %zu ops/tenant over %llu entries, "
              "mix v/r/q/w = 0.2/0.3/0.2/0.3\n"
              "serial = tenant-parallel, shard-serial; "
              "async = tenant-serial, shard-parallel (same total ops)\n"
              "sim = simulated device costs; file = real-IO costs "
              "(monotonic clocks)\n"
              "arbiter=%s, shard skew=%.2f\n\n",
              cfg.ops_per_tenant,
              static_cast<unsigned long long>(cfg.entries_per_tenant),
              cfg.arbiter ? "periodic" : "off", cfg.skew);
  std::printf("%7s %7s %4s %7s %8s %9s %11s %12s %11s %8s\n", "backend", "io",
              "qd", "shards", "tenants", "wall ms", "ops/sec", "mean us",
              "p99 us", "ios/op");
  PrintRule(96);

  // File cells sweep the requested queue depths; sim cells (no real reads
  // to overlap) run once at the nominal depth 1.
  std::vector<uint32_t> qds = cfg.qd_sweep;
  if (qds.empty()) {
    qds.push_back(static_cast<uint32_t>(std::max(1, IoQueueDepth())));
  }

  std::vector<SweepRow> rows;
  for (int file = 0; file <= 1; ++file) {
    if (file == 0 && !cfg.run_sim) continue;
    if (file == 1 && !cfg.run_file) continue;
    for (int async = 0; async <= 1; ++async) {
      if (async == 0 && !cfg.run_serial) continue;
      if (async == 1 && !cfg.run_async) continue;
      for (size_t shards = 1; shards <= cfg.max_shards; shards *= 2) {
        for (size_t threads = 1; threads <= cfg.max_threads; threads *= 2) {
          const size_t num_qds = file == 1 ? qds.size() : 1;
          for (size_t qi = 0; qi < num_qds; ++qi) {
          const SweepRow row = RunCell(cfg, shards, threads, async == 1,
                                       file == 1, qds[qi]);
          std::printf(
              "%7s %7s %4u %7zu %8zu %9.1f %11.0f %12.2f %11.2f %8.3f\n",
              row.backend, row.io_backend, row.io_queue_depth, row.shards,
              row.threads, row.wall_ms, row.ops_per_sec, row.sim_mean_us,
              row.sim_p99_us, row.sim_ios_per_op);
          if (cfg.arbiter && row.shards > 1) {
            // Where tenant 0's budget settled (even split when no round
            // moved memory).
            std::printf("        budgets Kb:");
            for (uint64_t bits : row.shard_budget_bits) {
              std::printf(" %.0f", static_cast<double>(bits) / 1024.0);
            }
            std::printf("\n");
          }
          rows.push_back(row);
          }
        }
      }
    }
  }
  if (!json_path.empty()) WriteJson(json_path, cfg, rows);
}

}  // namespace
}  // namespace camal::bench

int main(int argc, char** argv) {
  camal::bench::InitBenchThreads(&argc, argv);
  const std::string json_path = camal::bench::TakeJsonFlag(&argc, argv);

  camal::bench::SweepConfig cfg;
  // --threads / --shards raise the *largest* swept values; with neither
  // given, the documented defaults (8 shards x 4 tenants) apply.
  if (camal::util::GlobalThreads() > 1) {
    cfg.max_threads = static_cast<size_t>(camal::util::GlobalThreads());
  }
  if (camal::bench::Shards() > 1) cfg.max_shards = camal::bench::Shards();

  // Strict numeric parse, same policy as InitBenchThreads: a garbled value
  // must abort, not silently become a tiny (or zero) sweep.
  const auto parse_count = [](const char* flag, const char* s,
                              uint64_t* out) {
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(s, &end, 10);
    if (end == s || *end != '\0' || v <= 0 || errno == ERANGE) {
      std::fprintf(stderr, "invalid %s value '%s'\n", flag, s);
      return false;
    }
    *out = static_cast<uint64_t>(v);
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    uint64_t value = 0;
    if (std::strcmp(argv[i], "--quick") == 0) {
      cfg.max_shards = std::min<size_t>(cfg.max_shards, 4);
      cfg.max_threads = std::min<size_t>(cfg.max_threads, 4);
      cfg.ops_per_tenant = 1500;
      cfg.entries_per_tenant = 4000;
    } else if (std::strncmp(argv[i], "--ops=", 6) == 0) {
      if (!parse_count("--ops", argv[i] + 6, &value)) return 1;
      cfg.ops_per_tenant = static_cast<size_t>(value);
    } else if (std::strncmp(argv[i], "--entries=", 10) == 0) {
      if (!parse_count("--entries", argv[i] + 10, &value)) return 1;
      cfg.entries_per_tenant = value;
    } else if (std::strncmp(argv[i], "--mode=", 7) == 0) {
      const char* mode = argv[i] + 7;
      if (std::strcmp(mode, "serial") == 0) {
        cfg.run_async = false;
      } else if (std::strcmp(mode, "async") == 0) {
        cfg.run_serial = false;
      } else if (std::strcmp(mode, "both") != 0) {
        std::fprintf(stderr,
                     "invalid --mode value '%s' (serial|async|both)\n", mode);
        return 1;
      }
    } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      const char* backend = argv[i] + 10;
      if (std::strcmp(backend, "sim") == 0) {
        cfg.run_file = false;
      } else if (std::strcmp(backend, "file") == 0) {
        cfg.run_sim = false;
        cfg.run_file = true;
      } else if (std::strcmp(backend, "both") == 0) {
        cfg.run_file = true;
      } else {
        std::fprintf(stderr, "invalid --backend value '%s' (sim|file|both)\n",
                     backend);
        return 1;
      }
    } else if (std::strncmp(argv[i], "--workdir=", 10) == 0) {
      cfg.workdir = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--arbiter=", 10) == 0) {
      const char* arb = argv[i] + 10;
      if (std::strcmp(arb, "periodic") == 0) {
        cfg.arbiter = true;
      } else if (std::strcmp(arb, "off") != 0) {
        std::fprintf(stderr, "invalid --arbiter value '%s' (off|periodic)\n",
                     arb);
        return 1;
      }
    } else if (std::strncmp(argv[i], "--qd=", 5) == 0) {
      const char* p = argv[i] + 5;
      cfg.qd_sweep.clear();
      while (*p != '\0') {
        char* end = nullptr;
        errno = 0;
        const long v = std::strtol(p, &end, 10);
        if (end == p || v < 1 || v > 1024 || errno == ERANGE ||
            (*end != '\0' && *end != ',')) {
          std::fprintf(stderr,
                       "invalid --qd value '%s' (want a CSV of depths in "
                       "[1, 1024], e.g. --qd=1,8,32)\n",
                       argv[i] + 5);
          return 1;
        }
        cfg.qd_sweep.push_back(static_cast<uint32_t>(v));
        p = *end == ',' ? end + 1 : end;
      }
      if (cfg.qd_sweep.empty()) {
        std::fprintf(stderr, "--qd needs at least one depth\n");
        return 1;
      }
    } else if (std::strncmp(argv[i], "--skew=", 7) == 0) {
      char* end = nullptr;
      errno = 0;
      const double skew = std::strtod(argv[i] + 7, &end);
      if (end == argv[i] + 7 || *end != '\0' || skew < 0.0 ||
          errno == ERANGE) {
        std::fprintf(stderr, "invalid --skew value '%s'\n", argv[i] + 7);
        return 1;
      }
      cfg.skew = skew;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }
  camal::bench::Run(cfg, json_path);
  return 0;
}
