// Closes the sim-vs-real loop: measured-cost calibration and online
// config racing against the closed-form model's recommendation.
//
// Sweep: backend (sim | file) x calibration (off | fit) x racing
// (off | on), all against the PR 5 MonkeyDefaultConfig baseline.
//
// Each cell probes a small candidate set — the baseline, the closed-form
// recommendation, and shape perturbations of it — with short measured
// windows on the cell's backend. With calibration *fit*, the probes'
// (predicted, measured) per-channel pairs train a `ResidualCorrector`,
// and the tuned pick minimizes *corrected* cost over the candidates,
// with a do-no-harm rule: a calibrated pick that measures worse than the
// uncalibrated recommendation is discarded for the best-measured probe
// (the uncalibrated recommendation is itself a probe, so the calibrated
// cell's measured ios/op never exceeds the uncalibrated model pick's).
// With racing *on*, a `DynamicTuner` additionally races the cell's pick
// against the incumbent on live traffic and reports the race counters.
//
// With calibration and racing both off, the sim cell reproduces the
// uncalibrated pipeline bit for bit (the corrector is never constructed;
// the racing path is never entered).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "camal/dynamic_tuner.h"
#include "camal/residual_corrector.h"
#include "engine/file_engine.h"
#include "engine/sharded_engine.h"
#include "model/calibrated_cost_model.h"
#include "workload/executor.h"
#include "workload/generator.h"

namespace camal::bench {
namespace {

struct CalibConfig {
  uint64_t entries = 8000;
  size_t probe_ops = 2000;
  size_t phase_ops = 6000;
  size_t shards = 2;
  bool run_sim = true;
  bool run_file = true;
  std::string workdir;  // file backend; empty = system temp dir
};

struct CalibRow {
  const char* backend = "sim";
  const char* calibration = "off";
  const char* racing = "off";
  /// How the tuned pick was chosen: "model" (closed-form argmin),
  /// "calibrated" (corrected-cost argmin), or "measured" (do-no-harm
  /// fallback to the best-measured probe).
  const char* pick = "model";
  /// Probe-measured ios/op of the MonkeyDefault baseline, the
  /// uncalibrated closed-form recommendation, and the cell's tuned pick
  /// (same probe protocol for all three, so the columns compare).
  double baseline_ios_per_op = 0.0;
  double model_ios_per_op = 0.0;
  double tuned_ios_per_op = 0.0;
  double tuned_mean_us = 0.0;
  int corrector_channels = 0;
  /// Dynamic-phase results (racing dimension; 0 with racing off).
  double phase_ios_per_op = 0.0;
  size_t races_started = 0;
  size_t race_switches = 0;
  size_t race_holds = 0;
  size_t reconfigurations = 0;
};

tune::SystemSetup MakeSetup(const CalibConfig& cfg, bool file_backend) {
  tune::SystemSetup setup;
  setup.num_entries = cfg.entries;
  setup.total_memory_bits = 16 * cfg.entries;
  setup.num_shards = cfg.shards;
  setup.train_ops = cfg.probe_ops;
  setup.eval_ops = cfg.probe_ops;
  if (file_backend) {
    setup.backend = tune::EngineBackend::kFile;
    setup.file_workdir = cfg.workdir;
    setup.io_mode = IoMode();
    setup.io_queue_depth = std::max(1, IoQueueDepth());
  }
  return setup;
}

/// The probe candidate set: baseline, the closed-form recommendation,
/// and shape perturbations of the recommendation (T one notch each way,
/// Bloom two bits/key lighter with the freed bits in the buffer).
std::vector<tune::TuningConfig> ProbeCandidates(
    const tune::SystemSetup& setup, const tune::TuningConfig& baseline,
    const tune::TuningConfig& recommended) {
  std::vector<tune::TuningConfig> out = {baseline, recommended};
  const auto add_unique = [&out](const tune::TuningConfig& c) {
    for (const tune::TuningConfig& have : out) {
      if (have.size_ratio == c.size_ratio && have.mf_bits == c.mf_bits &&
          have.mb_bits == c.mb_bits && have.policy == c.policy) {
        return;
      }
    }
    out.push_back(c);
  };
  tune::TuningConfig t_up = recommended;
  t_up.size_ratio = recommended.size_ratio + 2.0;
  add_unique(t_up);
  tune::TuningConfig t_down = recommended;
  t_down.size_ratio = std::max(2.0, recommended.size_ratio - 2.0);
  add_unique(t_down);
  tune::TuningConfig lighter = recommended;
  const double shift =
      std::min(lighter.mf_bits, 2.0 * static_cast<double>(setup.num_entries));
  lighter.mf_bits -= shift;
  lighter.mb_bits += shift;
  add_unique(lighter);
  return out;
}

CalibRow RunCell(const CalibConfig& cfg, bool file_backend, bool calibrate,
                 bool race) {
  const tune::SystemSetup setup = MakeSetup(cfg, file_backend);
  const model::SystemParams params = setup.ToModelParams();
  const model::WorkloadSpec mix{0.2, 0.3, 0.2, 0.3};
  const tune::TuningConfig baseline = tune::MonkeyDefaultConfig(setup);

  CalibRow row;
  row.backend = file_backend ? "file" : "sim";
  row.calibration = calibrate ? "fit" : "off";
  row.racing = race ? "on" : "off";

  // The uncalibrated closed-form recommendation (the model's pick).
  tune::TunerOptions copts;
  const tune::ClassicTuner classic(setup, copts);
  const tune::TuningConfig recommended = classic.RecommendFor(mix, params);

  // Probe every candidate with the same short measured window. The probe
  // measurements serve double duty: fair measured comparison columns AND
  // (with calibration on) the corrector's per-channel training pairs.
  const std::vector<tune::TuningConfig> candidates =
      ProbeCandidates(setup, baseline, recommended);
  const tune::Evaluator evaluator(setup);
  std::vector<tune::Measurement> probes;
  probes.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    probes.push_back(
        evaluator.Measure(mix, candidates[i], cfg.probe_ops, /*salt=*/i));
  }
  row.baseline_ios_per_op = probes[0].ios_per_op;
  row.model_ios_per_op = probes[1].ios_per_op;

  size_t tuned = 1;  // calibration off: the model's pick stands
  std::shared_ptr<tune::ResidualCorrector> corrector;
  if (calibrate) {
    tune::ResidualCorrectorOptions ropts;
    ropts.seed = setup.seed;
    corrector = std::make_shared<tune::ResidualCorrector>(ropts);
    for (const tune::Measurement& m : probes) {
      if (m.point_ios_measured > 0.0) {
        corrector->Observe(model::CostChannel::kPointLookup,
                           m.point_ios_predicted, m.point_ios_measured);
      }
      if (m.range_ios_measured > 0.0) {
        corrector->Observe(model::CostChannel::kRangeLookup,
                           m.range_ios_predicted, m.range_ios_measured);
      }
      if (m.write_ios_measured > 0.0) {
        corrector->Observe(model::CostChannel::kWrite, m.write_ios_predicted,
                           m.write_ios_measured);
      }
    }
    corrector->Fit();
    for (int ch = 0; ch < static_cast<int>(model::kNumCostChannels); ++ch) {
      if (corrector->fitted(static_cast<model::CostChannel>(ch))) {
        ++row.corrector_channels;
      }
    }

    // The calibrated pick: corrected-cost argmin over the probed set.
    const model::CalibratedCostModel cm(params, corrector);
    const model::WorkloadSpec wn = mix.Normalized();
    size_t best = tuned;
    double best_cost = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < candidates.size(); ++i) {
      const double cost = cm.OpCost(wn, candidates[i].ToModelConfig());
      if (cost < best_cost) {
        best_cost = cost;
        best = i;
      }
    }
    row.pick = "calibrated";
    tuned = best;

    // Do-no-harm: a calibrated pick the probes already measured worse
    // than the uncalibrated recommendation is a corrector artifact —
    // fall back to the best-*measured* probe (which can only match or
    // beat the model pick, since the model pick was probed too).
    if (probes[tuned].ios_per_op >
        probes[1].ios_per_op + 1e-12) {
      size_t measured_best = 0;
      for (size_t i = 1; i < probes.size(); ++i) {
        if (probes[i].ios_per_op <
            probes[measured_best].ios_per_op) {
          measured_best = i;
        }
      }
      tuned = measured_best;
      row.pick = "measured";
    }
  }
  row.tuned_ios_per_op = probes[tuned].ios_per_op;
  row.tuned_mean_us = probes[tuned].mean_latency_ns / 1e3;

  if (race) {
    // Dynamic phase: a live engine at the baseline config, retuned by
    // the (optionally calibrated) closed-form recommender, with racing
    // measuring every recommendation against the incumbent before it
    // sticks.
    workload::KeySpace keys(setup.num_entries, setup.seed);
    std::unique_ptr<engine::StorageEngine> engine;
    if (file_backend) {
      engine::FileEngineConfig fcfg;
      if (!cfg.workdir.empty()) {
        fcfg.workdir = cfg.workdir + "/race_" +
                       std::to_string(engine::FileEngine::NextUniqueId());
      }
      engine = std::make_unique<engine::FileEngine>(
          setup.num_shards, baseline.ToOptions(setup), fcfg);
    } else {
      engine = std::make_unique<engine::ShardedEngine>(
          setup.num_shards, baseline.ToOptions(setup),
          setup.MakeDeviceConfig());
    }
    workload::BulkLoad(engine.get(), keys);

    tune::TunerOptions dopts;
    dopts.cost_corrector = corrector;  // null with calibration off
    const auto dtuner = std::make_shared<tune::ClassicTuner>(setup, dopts);
    tune::DynamicTuner::Params dparams;
    // Fire early but not repeatedly (a re-fire abandons a running race),
    // and race with short windows so races settle well inside even the
    // --quick phase (a race needs ~candidates x window_ops measured ops
    // per shard after the detector's first fire).
    dparams.window_ops = 256;
    dparams.tau = 0.20;
    tune::DynamicTuner dynamic(
        [dtuner](const model::WorkloadSpec& w,
                 const model::SystemParams& target) {
          return dtuner->RecommendFor(w, target);
        },
        setup, dparams);
    tune::RacingOptions ropts;
    ropts.enabled = true;
    ropts.window_ops = 96;
    ropts.min_rounds = 1;
    dynamic.set_racing(ropts);

    const workload::ExecutionResult phase =
        dynamic.RunPhase(engine.get(), &keys, mix, cfg.phase_ops, setup.seed);
    row.phase_ios_per_op = phase.IosPerOp();
    row.races_started = dynamic.races_started();
    row.race_switches = dynamic.race_switches();
    row.race_holds = dynamic.race_holds();
    row.reconfigurations = dynamic.reconfigurations();
  }
  return row;
}

void WriteJson(const std::string& path, const CalibConfig& cfg,
               const std::vector<CalibRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"calibration\",\n");
  std::fprintf(f, "  \"entries\": %llu,\n",
               static_cast<unsigned long long>(cfg.entries));
  std::fprintf(f, "  \"probe_ops\": %zu,\n", cfg.probe_ops);
  std::fprintf(f, "  \"phase_ops\": %zu,\n", cfg.phase_ops);
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const CalibRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"backend\": \"%s\", \"calibration\": \"%s\", "
        "\"racing\": \"%s\", \"pick\": \"%s\", "
        "\"baseline_ios_per_op\": %.4f, \"model_ios_per_op\": %.4f, "
        "\"tuned_ios_per_op\": %.4f, \"tuned_mean_us\": %.3f, "
        "\"corrector_channels\": %d, \"phase_ios_per_op\": %.4f, "
        "\"races_started\": %zu, \"race_switches\": %zu, "
        "\"race_holds\": %zu, \"reconfigurations\": %zu}%s\n",
        r.backend, r.calibration, r.racing, r.pick, r.baseline_ios_per_op,
        r.model_ios_per_op, r.tuned_ios_per_op, r.tuned_mean_us,
        r.corrector_channels, r.phase_ios_per_op, r.races_started,
        r.race_switches, r.race_holds, r.reconfigurations,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("[bench] wrote %s\n", path.c_str());
}

void Run(const CalibConfig& cfg, const std::string& json_path) {
  std::printf(
      "Sim-vs-real calibration: backend x calibration(off|fit) x "
      "racing(off|on) vs the MonkeyDefault baseline\n"
      "%llu entries, %zu probe ops, %zu phase ops, %zu shards\n\n",
      static_cast<unsigned long long>(cfg.entries), cfg.probe_ops,
      cfg.phase_ops, cfg.shards);
  std::printf("%7s %6s %7s %9s %10s %9s %9s %7s %7s %6s\n", "backend",
              "calib", "racing", "pick", "base io/op", "model", "tuned",
              "races", "switch", "hold");
  PrintRule(92);

  std::vector<CalibRow> rows;
  for (int file = 0; file <= 1; ++file) {
    if (file == 0 && !cfg.run_sim) continue;
    if (file == 1 && !cfg.run_file) continue;
    for (int calib = 0; calib <= 1; ++calib) {
      for (int race = 0; race <= 1; ++race) {
        const CalibRow row =
            RunCell(cfg, file == 1, calib == 1, race == 1);
        std::printf("%7s %6s %7s %9s %10.3f %9.3f %9.3f %7zu %7zu %6zu\n",
                    row.backend, row.calibration, row.racing, row.pick,
                    row.baseline_ios_per_op, row.model_ios_per_op,
                    row.tuned_ios_per_op, row.races_started,
                    row.race_switches, row.race_holds);
        rows.push_back(row);
      }
    }
  }
  if (!json_path.empty()) WriteJson(json_path, cfg, rows);
}

}  // namespace
}  // namespace camal::bench

int main(int argc, char** argv) {
  camal::bench::InitBenchThreads(&argc, argv);
  const std::string json_path = camal::bench::TakeJsonFlag(&argc, argv);

  camal::bench::CalibConfig cfg;
  if (camal::bench::Shards() > 1) cfg.shards = camal::bench::Shards();

  const auto parse_count = [](const char* flag, const char* s,
                              uint64_t* out) {
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(s, &end, 10);
    if (end == s || *end != '\0' || v <= 0 || errno == ERANGE) {
      std::fprintf(stderr, "invalid %s value '%s'\n", flag, s);
      return false;
    }
    *out = static_cast<uint64_t>(v);
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    uint64_t value = 0;
    if (std::strcmp(argv[i], "--quick") == 0) {
      cfg.entries = 4000;
      cfg.probe_ops = 1200;
      cfg.phase_ops = 3000;
    } else if (std::strncmp(argv[i], "--entries=", 10) == 0) {
      if (!parse_count("--entries", argv[i] + 10, &value)) return 1;
      cfg.entries = value;
    } else if (std::strncmp(argv[i], "--ops=", 6) == 0) {
      if (!parse_count("--ops", argv[i] + 6, &value)) return 1;
      cfg.probe_ops = static_cast<size_t>(value);
      cfg.phase_ops = static_cast<size_t>(3 * value);
    } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      const char* backend = argv[i] + 10;
      if (std::strcmp(backend, "sim") == 0) {
        cfg.run_file = false;
      } else if (std::strcmp(backend, "file") == 0) {
        cfg.run_sim = false;
      } else if (std::strcmp(backend, "both") != 0) {
        std::fprintf(stderr, "invalid --backend value '%s' (sim|file|both)\n",
                     backend);
        return 1;
      }
    } else if (std::strncmp(argv[i], "--workdir=", 10) == 0) {
      cfg.workdir = argv[i] + 10;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 1;
    }
  }

  camal::bench::Run(cfg, json_path);
  return 0;
}
