// Figure 6e: tuned system latency as the fraction of deletes within the
// write mix varies, for a 99%-write workload and a 50/50 write/read mix.
//
// Expected shape (paper): latency is essentially flat in the delete
// fraction — tombstones ride the same write path as inserts and updates.

#include "bench_common.h"

namespace camal::bench {
namespace {

void Run() {
  tune::SystemSetup setup = BenchSetup();
  tune::Evaluator evaluator(setup);

  model::WorkloadSpec writes{0.0, 0.01, 0.0, 0.99};
  model::WorkloadSpec half{0.0, 0.5, 0.0, 0.5};

  // Tune once per workload with CAMAL(Trees) at zero deletes, then sweep
  // the delete fraction (the structure is delete-agnostic).
  tune::TunerOptions options;
  options.model_kind = tune::ModelKind::kTrees;
  options.extrapolation_factor = 10.0;
  tune::CamalTuner camal(setup, options);
  camal.Train({writes, half});

  std::printf("Figure 6e: system latency vs %% deletes in writes (tuned "
              "with CAMAL(Trees))\n\n");
  std::printf("%10s %14s %16s\n", "% deletes", "99%W (us)", "50%W+50%R (us)");
  PrintRule(44);
  for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    std::printf("%10.0f", frac * 100.0);
    for (const model::WorkloadSpec& base : {writes, half}) {
      model::WorkloadSpec w = base;
      w.delete_frac = frac;
      const tune::Measurement m = evaluator.Evaluate(w, camal.Recommend(base),
                                                     static_cast<uint64_t>(
                                                         frac * 100.0));
      std::printf(" %14.1f", m.mean_latency_ns / 1e3);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace camal::bench

int main(int argc, char** argv) {
  camal::bench::InitBenchThreads(&argc, argv);
  camal::bench::Run();
  return 0;
}
