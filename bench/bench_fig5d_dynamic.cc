// Figure 5d: system latency and I/Os per query across the 24 shifting
// Table-2 workloads, on a single live store whose data grows throughout.
// Classic and Monkey are statically configured once (for the average mix);
// CAMAL (Poly and Trees) drives the dynamic LSM-tree, re-tuning via the
// shift detector and applying changes lazily.
//
// Expected shape (paper): CAMAL tracks the shifts and wins on most phases —
// dramatically so on write-heavy stretches (multi-x); the static baselines
// are stable but slow.

#include "bench_common.h"

#include "camal/dynamic_tuner.h"
#include "engine/sharded_engine.h"

namespace camal::bench {
namespace {

struct PhaseRow {
  double latency_us = 0.0;
  double ios = 0.0;
};

// Both drivers serve through an engine::ShardedEngine with --shards
// partitions (default 1, which is bit-identical to driving the tree
// directly). The device jitter stream is derived from the setup seed.

std::vector<PhaseRow> RunStatic(const tune::SystemSetup& setup,
                                const tune::TuningConfig& config,
                                size_t ops_per_phase,
                                const std::vector<double>& phase_skews) {
  workload::KeySpace keys(setup.num_entries, setup.seed);
  engine::ShardedEngine eng(Shards(), config.ToOptions(setup),
                            setup.MakeDeviceConfig());
  workload::BulkLoad(&eng, keys);

  std::vector<PhaseRow> rows;
  const auto phases = workload::ShiftingWorkloads();
  for (size_t i = 0; i < phases.size(); ++i) {
    workload::ExecutorConfig exec;
    exec.num_ops = ops_per_phase;
    exec.generator.scan_len = setup.scan_len;
    exec.generator.insert_new_keys = true;  // the data grows, as in 5d
    // Tenant-skewed phases, matching the dynamic driver (bit-identical
    // stream at skew 0). With --skew-drift the hotness deepens phase by
    // phase.
    exec.generator.shard_skew = phase_skews[i];
    exec.generator.num_shards = Shards();
    exec.seed = i + 1;
    auto result = workload::Execute(&eng, phases[i], exec, &keys);
    rows.push_back(PhaseRow{result.MeanLatencyNs() / 1e3, result.IosPerOp()});
  }
  return rows;
}

std::vector<PhaseRow> RunDynamic(const tune::SystemSetup& setup,
                                 tune::ModelBackedTuner* tuner,
                                 size_t ops_per_phase,
                                 const std::vector<double>& phase_skews) {
  workload::KeySpace keys(setup.num_entries, setup.seed);
  engine::ShardedEngine eng(
      Shards(), tune::MonkeyDefaultConfig(setup).ToOptions(setup),
      setup.MakeDeviceConfig());
  workload::BulkLoad(&eng, keys);

  tune::DynamicTuner::Params params;
  params.window_ops = 1000;
  params.tau = 0.10;
  tune::DynamicTuner dynamic(
      [tuner](const model::WorkloadSpec& w,
              const model::SystemParams& target) {
        return tuner->RecommendFor(w, target);
      },
      setup, params);

  std::vector<PhaseRow> rows;
  const auto phases = workload::ShiftingWorkloads();
  for (size_t i = 0; i < phases.size(); ++i) {
    // Per-phase tenant-hotness drift: the generator behind RunPhase picks
    // this up for the whole phase. At zero drift every call re-writes the
    // same value — bit-identical to the fixed-skew run.
    dynamic.set_phase_shard_skew(phase_skews[i]);
    const auto result =
        dynamic.RunPhase(&eng, &keys, phases[i], ops_per_phase, i + 1);
    rows.push_back(PhaseRow{result.MeanLatencyNs() / 1e3, result.IosPerOp()});
  }
  return rows;
}

void Run(double skew, double skew_drift) {
  tune::SystemSetup setup = BenchSetup();
  // Hot/cold tenant traffic across the engine's shards (inert at 0, and
  // meaningless with 1 shard — Validate rejects that combination).
  setup.shard_skew = skew;
  tune::ValidateOrDie(setup);
  if (skew_drift > 0.0 && Shards() < 2) {
    std::fprintf(stderr, "--skew-drift needs --shards >= 2: a single shard "
                         "has no hot/cold tenants to drift between\n");
    std::exit(1);
  }
  const size_t ops_per_phase = 6000;
  const auto train = workload::TrainingWorkloads();

  // Phase i serves at skew + i*drift: under drift the hot tenants get
  // hotter as the run ages, the dynamic stress the arbiter and per-shard
  // retunes are built for. Drift 0 reproduces the fixed-skew phases
  // bit-identically.
  const size_t num_phases = workload::ShiftingWorkloads().size();
  std::vector<double> phase_skews(num_phases);
  for (size_t i = 0; i < num_phases; ++i) {
    phase_skews[i] = skew + skew_drift * static_cast<double>(i);
  }

  // Static baselines, configured for the average Table-2 mix.
  model::WorkloadSpec average{0.25, 0.25, 0.25, 0.25};
  tune::ClassicTuner classic(setup, tune::TunerOptions{});
  tune::MonkeyTuner monkey(setup);
  const auto classic_rows =
      RunStatic(setup, classic.Recommend(average), ops_per_phase, phase_skews);
  const auto monkey_rows =
      RunStatic(setup, monkey.Recommend(average), ops_per_phase, phase_skews);

  // CAMAL, trained once at 1/10 scale, then driving the dynamic tree.
  auto train_camal = [&](tune::ModelKind model) {
    tune::TunerOptions options;
    options.model_kind = model;
    options.extrapolation_factor = 10.0;
    auto tuner = std::make_unique<tune::CamalTuner>(setup, options);
    tuner->Train(train);
    return tuner;
  };
  auto poly = train_camal(tune::ModelKind::kPoly);
  auto trees = train_camal(tune::ModelKind::kTrees);
  const auto poly_rows =
      RunDynamic(setup, poly.get(), ops_per_phase, phase_skews);
  const auto trees_rows =
      RunDynamic(setup, trees.get(), ops_per_phase, phase_skews);

  std::printf("Figure 5d: dynamic test workloads (Table 2), %zu ops per "
              "phase, growing data\n",
              ops_per_phase);
  if (skew_drift > 0.0) {
    std::printf("tenant hotness drift: shard_skew %.2f -> %.2f across %zu "
                "phases (+%.3f/phase)\n",
                phase_skews.front(), phase_skews.back(), num_phases,
                skew_drift);
  }
  std::printf("\n");
  std::printf("System latency per op (us):\n");
  std::printf("%4s %10s %10s %12s %12s\n", "ph", "Classic", "Monkey",
              "CAMAL(Poly)", "CAMAL(Trees)");
  PrintRule(54);
  for (size_t i = 0; i < classic_rows.size(); ++i) {
    std::printf("%4zu %10.1f %10.1f %12.1f %12.1f\n", i + 1,
                classic_rows[i].latency_us, monkey_rows[i].latency_us,
                poly_rows[i].latency_us, trees_rows[i].latency_us);
  }
  std::printf("\nI/Os per query:\n");
  std::printf("%4s %10s %10s %12s %12s\n", "ph", "Classic", "Monkey",
              "CAMAL(Poly)", "CAMAL(Trees)");
  PrintRule(54);
  for (size_t i = 0; i < classic_rows.size(); ++i) {
    std::printf("%4zu %10.2f %10.2f %12.2f %12.2f\n", i + 1,
                classic_rows[i].ios, monkey_rows[i].ios, poly_rows[i].ios,
                trees_rows[i].ios);
  }

  auto total = [](const std::vector<PhaseRow>& rows) {
    double lat = 0.0;
    for (const PhaseRow& r : rows) lat += r.latency_us;
    return lat / static_cast<double>(rows.size());
  };
  std::printf("\nmean latency/op: Classic=%.1fus Monkey=%.1fus "
              "CAMAL(Poly)=%.1fus CAMAL(Trees)=%.1fus\n",
              total(classic_rows), total(monkey_rows), total(poly_rows),
              total(trees_rows));
}

}  // namespace
}  // namespace camal::bench

int main(int argc, char** argv) {
  camal::bench::InitBenchThreads(&argc, argv);
  double skew = 0.0;
  double skew_drift = 0.0;
  const auto parse_nonneg = [](const char* text, const char* flag,
                               double* out) {
    char* end = nullptr;
    errno = 0;
    *out = std::strtod(text, &end);
    if (end == text || *end != '\0' || *out < 0.0 || errno == ERANGE) {
      std::fprintf(stderr, "invalid %s value '%s'\n", flag, text);
      return false;
    }
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--skew=", 7) == 0) {
      if (!parse_nonneg(argv[i] + 7, "--skew", &skew)) return 1;
    } else if (std::strncmp(argv[i], "--skew-drift=", 13) == 0) {
      if (!parse_nonneg(argv[i] + 13, "--skew-drift", &skew_drift)) return 1;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }
  camal::bench::Run(skew, skew_drift);
  return 0;
}
