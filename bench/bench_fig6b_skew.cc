// Figure 6b: normalized latency vs Zipfian skew coefficient. CAMAL tunes
// the block cache (Mc round enabled) and is trained on skewed streams, so
// it converts skew into cache hits; Classic cannot reason about the cache.
//
// Expected shape (paper): CAMAL's advantage widens with skew, reaching
// ~0.7-0.8 of Classic at high skew.

#include "bench_common.h"

namespace camal::bench {
namespace {

void Run() {
  tune::SystemSetup setup = BenchSetup();
  const auto base_workloads = workload::TrainingWorkloads();
  std::printf("Figure 6b: normalized latency vs skew (Classic = 1.00)\n\n");
  std::printf("%6s %12s %12s\n", "skew", "CAMAL(Poly)", "CAMAL(Trees)");
  PrintRule(34);

  for (double skew : {0.2, 0.4, 0.6, 0.8, 0.9}) {
    // Train and evaluate at this skew (strategy (b) of Section 8.1).
    std::vector<model::WorkloadSpec> workloads;
    for (model::WorkloadSpec w : base_workloads) {
      w.skew = skew;
      workloads.push_back(w);
    }
    const std::vector<model::WorkloadSpec> eval_set = {
        workloads[0], workloads[5], workloads[8], workloads[12]};
    tune::Evaluator evaluator(setup);
    tune::ClassicTuner classic(setup, tune::TunerOptions{});
    const SuiteStats classic_stats = EvaluateSuite(
        evaluator, [&](const auto& w) { return classic.Recommend(w); },
        eval_set);

    std::printf("%6.1f", skew);
    for (tune::ModelKind model :
         {tune::ModelKind::kPoly, tune::ModelKind::kTrees}) {
      tune::TunerOptions options;
      options.model_kind = model;
      options.extrapolation_factor = 10.0;
      options.tune_mc = true;  // cache matters under skew
      tune::CamalTuner camal(setup, options);
      camal.Train(workloads);
      const SuiteStats stats = EvaluateSuite(
          evaluator, [&](const auto& w) { return camal.Recommend(w); },
          eval_set);
      std::printf(" %12.2f",
                  stats.mean_latency_us / classic_stats.mean_latency_us);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace camal::bench

int main(int argc, char** argv) {
  camal::bench::InitBenchThreads(&argc, argv);
  camal::bench::Run();
  return 0;
}
