// Figure 7a: extending the tuning space with new parameters via group-wise
// sampling — runs-per-level K sampled jointly with T (co-dependent) vs
// after T (independent), and SST file size sampled independently — at
// growing extra sample budgets (+3/+6/+9).
//
// Expected shape (paper): co-dependent (T, K) sampling beats independent K
// (which gets stuck near the T-only optimum); file-size tuning has a much
// smaller effect.

#include "bench_common.h"

namespace camal::bench {
namespace {

void Run() {
  tune::SystemSetup setup = BenchSetup();
  tune::Evaluator evaluator(setup);
  const auto workloads = workload::TrainingWorkloads();
  const std::vector<model::WorkloadSpec> eval_set = {
      workloads[0], workloads[7], workloads[10], workloads[12]};

  tune::MonkeyTuner monkey(setup);
  const SuiteStats monkey_stats = EvaluateSuite(
      evaluator, [&](const auto& w) { return monkey.Recommend(w); },
      eval_set);

  std::printf("Figure 7a: adding parameters with group-wise sampling "
              "(normalized vs RocksDB default = 1.00)\n\n");
  std::printf("%8s %18s %18s %12s\n", "+samples", "+K (independent)",
              "+K (codependent)", "+File Size");
  PrintRule(62);

  for (int extra : {3, 6, 9}) {
    std::printf("%8d", extra);
    struct Variant {
      tune::KTuningMode k_mode;
      bool file;
    };
    for (const Variant variant :
         {Variant{tune::KTuningMode::kIndependent, false},
          Variant{tune::KTuningMode::kCodependent, false},
          Variant{tune::KTuningMode::kOff, true}}) {
      tune::TunerOptions options;
      options.model_kind = tune::ModelKind::kTrees;
      options.extrapolation_factor = 10.0;
      options.k_mode = variant.k_mode;
      options.tune_file_size = variant.file;
      // The extra budget feeds the new parameter's sampling round.
      options.samples_per_round = extra;
      tune::CamalTuner camal(setup, options);
      camal.Train(workloads);
      const SuiteStats stats = EvaluateSuite(
          evaluator, [&](const auto& w) { return camal.Recommend(w); },
          eval_set);
      std::printf(" %18.2f",
                  stats.mean_latency_us / monkey_stats.mean_latency_us);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace camal::bench

int main(int argc, char** argv) {
  camal::bench::InitBenchThreads(&argc, argv);
  camal::bench::Run();
  return 0;
}
