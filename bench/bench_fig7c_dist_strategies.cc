// Figure 7c: the three ways of incorporating data-distribution knowledge
// (Section 8.1): (a) train on uniform data, test on skewed; (b) train at
// the test skew; (c) train across several skews with the coefficient as a
// model feature.
//
// Expected shape (paper): (b) and (c) improve on (a) by up to ~15% as
// skewness grows, thanks to smarter cache allocation.

#include "bench_common.h"

namespace camal::bench {
namespace {

std::vector<model::WorkloadSpec> WithSkew(
    const std::vector<model::WorkloadSpec>& base, double skew) {
  std::vector<model::WorkloadSpec> out;
  for (model::WorkloadSpec w : base) {
    w.skew = skew;
    out.push_back(w);
  }
  return out;
}

void Run() {
  tune::SystemSetup setup = BenchSetup();
  setup.num_entries = 20000;
  setup.total_memory_bits = 16 * setup.num_entries;
  tune::Evaluator evaluator(setup);
  const auto base = workload::TrainingWorkloads();
  const std::vector<model::WorkloadSpec> eval_base = {base[0], base[5],
                                                      base[8], base[12]};

  tune::TunerOptions options;
  options.model_kind = tune::ModelKind::kTrees;
  options.extrapolation_factor = 10.0;
  options.tune_mc = true;

  // Strategy (a): trained once on uniform streams.
  tune::CamalTuner strategy_a(setup, options);
  strategy_a.Train(base);
  // Strategy (c): trained across skews; the skew feature lets one model
  // serve them all.
  tune::CamalTuner strategy_c(setup, options);
  {
    std::vector<model::WorkloadSpec> multi;
    for (double s : {0.0, 0.5, 0.9}) {
      const auto skewed = WithSkew({base[0], base[5], base[8], base[12]}, s);
      multi.insert(multi.end(), skewed.begin(), skewed.end());
    }
    strategy_c.Train(multi);
  }

  std::printf("Figure 7c: distribution strategies vs skewness "
              "(normalized to strategy (a) = 1.00)\n\n");
  std::printf("%6s %12s %12s %12s\n", "skew", "(a)uniform", "(b)same",
              "(c)feature");
  PrintRule(48);
  for (double skew : {0.2, 0.4, 0.6, 0.8}) {
    const auto eval_set = WithSkew(eval_base, skew);
    // Strategy (b): trained at exactly this skew.
    tune::CamalTuner strategy_b(setup, options);
    strategy_b.Train(WithSkew(base, skew));

    const SuiteStats a = EvaluateSuite(
        evaluator, [&](const auto& w) { return strategy_a.Recommend(w); },
        eval_set);
    const SuiteStats b = EvaluateSuite(
        evaluator, [&](const auto& w) { return strategy_b.Recommend(w); },
        eval_set);
    const SuiteStats c = EvaluateSuite(
        evaluator, [&](const auto& w) { return strategy_c.Recommend(w); },
        eval_set);
    std::printf("%6.1f %12.2f %12.2f %12.2f\n", skew, 1.0,
                b.mean_latency_us / a.mean_latency_us,
                c.mean_latency_us / a.mean_latency_us);
  }
}

}  // namespace
}  // namespace camal::bench

int main(int argc, char** argv) {
  camal::bench::InitBenchThreads(&argc, argv);
  camal::bench::Run();
  return 0;
}
