// Figure 6f: empirical independence of T and the memory split — measured
// latency vs the write-buffer share of memory, at T in {2, 5, 10}.
//
// Measurements average over several data sizes (fixed memory budget) so
// that level-fullness resonance at one specific N does not mask the
// steady-state landscape — the analogue of the paper's steady-state 10M
// instances.
//
// Expected shape (paper): for every T the curve bottoms out at roughly the
// same buffer share (~60-70%), validating the decoupling of Lemma 4.1:
// tune T first, then split the memory.

#include "bench_common.h"

namespace camal::bench {
namespace {

void Run() {
  const model::WorkloadSpec w{0.3, 0.3, 0.2, 0.2};  // the paper's mixed load
  const std::vector<uint64_t> data_sizes = {30000, 34000, 38000, 42000,
                                            46000};
  const std::vector<double> shares = {0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};

  std::printf("Figure 6f: normalized latency vs write-buffer share, per T\n");
  std::printf("(workload %s; per-row normalization to the row maximum)\n\n",
              w.ToString().c_str());
  std::printf("%6s", "T");
  for (double share : shares) std::printf(" %7.1f", share);
  std::printf("\n");
  PrintRule(64);

  for (double t : {2.0, 5.0, 10.0}) {
    std::vector<double> latencies;
    for (double share : shares) {
      double sum = 0.0;
      int count = 0;
      for (uint64_t n : data_sizes) {
        tune::SystemSetup setup = BenchSetup();
        setup.num_entries = n;  // memory budget stays at the default
        tune::Evaluator evaluator(setup);
        tune::TuningConfig c;
        c.size_ratio = t;
        c.mb_bits = share * static_cast<double>(setup.total_memory_bits);
        c.mf_bits = static_cast<double>(setup.total_memory_bits) - c.mb_bits;
        sum += evaluator
                   .Measure(w, c, 2500,
                            static_cast<uint64_t>(991 * n + 100 * share))
                   .mean_latency_ns;
        ++count;
      }
      latencies.push_back(sum / count);
    }
    double max_lat = 0.0;
    for (double lat : latencies) max_lat = std::max(max_lat, lat);
    std::printf("%6.0f", t);
    size_t best = 0;
    for (size_t i = 0; i < latencies.size(); ++i) {
      if (latencies[i] < latencies[best]) best = i;
      std::printf(" %7.2f", latencies[i] / max_lat);
    }
    std::printf("   (best share: %.1f)\n", shares[best]);
  }
  std::printf("\nThe minimum sits at a similar buffer share for every T — "
              "the decoupling\nassumption of Lemma 4.1 holds in practice.\n");
}

}  // namespace
}  // namespace camal::bench

int main(int argc, char** argv) {
  camal::bench::InitBenchThreads(&argc, argv);
  camal::bench::Run();
  return 0;
}
